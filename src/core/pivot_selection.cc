#include "src/core/pivot_selection.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "src/core/thread_pool.h"

namespace pmi {
namespace {

/// Per-slot copy of a DistanceComputer counting into `shard`; the shards
/// are folded back into the original sink at each task boundary so the
/// selection cost attribution is exact at any thread count.
DistanceComputer ShardComputer(const DistanceComputer& d,
                               PerfCounters* shard) {
  return DistanceComputer(&d.metric(), shard);
}

/// Index of the sampled object farthest from `from`, distances through
/// `d`.  Parallel max-reduction: each slot keeps a first-wins local
/// maximum over its contiguous chunk; combining in ascending slot order
/// with a strict `>` then reproduces the serial loop's
/// first-maximum-wins tie-break exactly.
uint32_t FarthestInSample(const Dataset& data,
                          const std::vector<uint32_t>& sample,
                          const DistanceComputer& d, ObjectId from) {
  ThreadPool& pool = ThreadPool::Global();
  std::vector<double> best(pool.size(), -1);
  std::vector<uint32_t> best_i(pool.size(), 0);
  std::vector<CounterShard> shards(pool.size());
  ObjectView fv = data.view(from);
  ParallelFor(pool, sample.size(),
              [&](size_t begin, size_t end, unsigned slot) {
                DistanceComputer local = ShardComputer(d, &shards[slot].counters);
                double b = -1;
                uint32_t bi = 0;
                for (size_t i = begin; i < end; ++i) {
                  double dd = local(fv, data.view(sample[i]));
                  if (dd > b) {
                    b = dd;
                    bi = static_cast<uint32_t>(i);
                  }
                }
                best[slot] = b;
                best_i[slot] = bi;
              });
  FoldCounters(shards, d.counters());
  double g = -1;
  uint32_t gi = 0;
  for (unsigned s = 0; s < pool.size(); ++s) {
    if (best[s] > g) {
      g = best[s];
      gi = best_i[s];
    }
  }
  return gi;
}

}  // namespace

std::vector<ObjectId> SelectPivotsRandom(const Dataset& data, uint32_t count,
                                         Rng& rng) {
  std::vector<uint32_t> ids = SampleDistinct(data.size(), count, rng);
  return {ids.begin(), ids.end()};
}

std::vector<ObjectId> SelectPivotsHF(const Dataset& data,
                                     const DistanceComputer& dist,
                                     uint32_t count,
                                     const PivotSelectionOptions& options) {
  assert(!data.empty());
  Rng rng(options.seed);
  std::vector<uint32_t> sample =
      SampleDistinct(data.size(), options.sample_size, rng);
  count = std::min<uint32_t>(count, static_cast<uint32_t>(sample.size()));

  // Classic hull-of-foci: start from a random object s, take f1 = farthest
  // from s, f2 = farthest from f1; the "edge" is d(f1, f2).  Then greedily
  // add the object whose distances to the chosen foci deviate least from
  // the edge (it lies near the hull, roughly equidistant from all foci).
  ObjectId seed_obj = sample[rng() % sample.size()];
  ObjectId f1 = sample[FarthestInSample(data, sample, dist, seed_obj)];
  std::vector<ObjectId> foci = {f1};
  if (count == 1) return foci;
  ObjectId f2 = sample[FarthestInSample(data, sample, dist, f1)];
  double edge = dist.metric().Distance(data.view(f1), data.view(f2));
  foci.push_back(f2);

  ThreadPool& pool = ThreadPool::Global();
  std::vector<double> error(sample.size(), 0);
  std::vector<bool> used(sample.size(), false);
  // Each error[i] belongs to exactly one chunk and receives exactly one
  // += per focus, so the accumulation order per element matches the
  // serial loop; `used` is only read inside the region.
  auto accumulate = [&](ObjectId focus) {
    ObjectView fv = data.view(focus);
    std::vector<CounterShard> shards(pool.size());
    ParallelFor(pool, sample.size(),
                [&](size_t begin, size_t end, unsigned slot) {
                  DistanceComputer local = ShardComputer(dist, &shards[slot].counters);
                  for (size_t i = begin; i < end; ++i) {
                    if (used[i]) continue;
                    error[i] +=
                        std::fabs(local(data.view(sample[i]), fv) - edge);
                  }
                });
    FoldCounters(shards, dist.counters());
  };
  for (uint32_t i = 0; i < sample.size(); ++i) {
    if (sample[i] == f1 || sample[i] == f2) used[i] = true;
  }
  accumulate(f1);
  accumulate(f2);

  while (foci.size() < count) {
    double best = std::numeric_limits<double>::infinity();
    uint32_t best_i = UINT32_MAX;
    for (uint32_t i = 0; i < sample.size(); ++i) {
      if (!used[i] && error[i] < best) {
        best = error[i];
        best_i = i;
      }
    }
    if (best_i == UINT32_MAX) break;  // sample exhausted
    used[best_i] = true;
    foci.push_back(sample[best_i]);
    accumulate(sample[best_i]);
  }
  return foci;
}

std::vector<ObjectId> SelectPivotsHFI(const Dataset& data,
                                      const DistanceComputer& dist,
                                      uint32_t count,
                                      const PivotSelectionOptions& options,
                                      uint32_t candidate_count) {
  assert(!data.empty());
  if (candidate_count == 0) candidate_count = std::max(4 * count, 40u);
  std::vector<ObjectId> candidates =
      SelectPivotsHF(data, dist, candidate_count, options);
  if (candidates.size() <= count) return candidates;

  Rng rng(options.seed ^ 0x9e3779b97f4a7c15ULL);
  const uint32_t pairs = options.pair_sample;

  // Sample object pairs (a, b) and precompute all candidate distances.
  std::vector<ObjectId> a_ids, b_ids;
  std::vector<double> d_ab;
  a_ids.reserve(pairs);
  b_ids.reserve(pairs);
  d_ab.reserve(pairs);
  for (uint32_t i = 0; i < pairs; ++i) {
    ObjectId a = rng() % data.size();
    ObjectId b = rng() % data.size();
    double dd = dist(data.view(a), data.view(b));
    if (dd <= 0) continue;  // identical objects carry no signal
    a_ids.push_back(a);
    b_ids.push_back(b);
    d_ab.push_back(dd);
  }
  const uint32_t np = static_cast<uint32_t>(d_ab.size());
  if (np == 0) {  // degenerate dataset (all duplicates): any pivots do
    candidates.resize(count);
    return candidates;
  }

  // diff[c * np + j] = |d(a_j, p_c) - d(b_j, p_c)|, the pivot-space Linf
  // contribution of candidate c on pair j -- one contiguous candidates x
  // pairs buffer (row stride np), so the per-round gain scan below walks
  // candidate rows linearly and the fill parallelizes over candidates
  // with no shared writes.
  ThreadPool& pool = ThreadPool::Global();
  const size_t nc = candidates.size();
  std::vector<double> diff(nc * np);
  {
    std::vector<CounterShard> shards(pool.size());
    ParallelFor(pool, nc, [&](size_t begin, size_t end, unsigned slot) {
      DistanceComputer local = ShardComputer(dist, &shards[slot].counters);
      for (size_t c = begin; c < end; ++c) {
        ObjectView pv = data.view(candidates[c]);
        double* row = &diff[c * np];
        for (uint32_t j = 0; j < np; ++j) {
          double da = local(data.view(a_ids[j]), pv);
          double db = local(data.view(b_ids[j]), pv);
          row[j] = std::fabs(da - db);
        }
      }
    });
    FoldCounters(shards, dist.counters());
  }

  // Greedy forward selection on the mean D(a,b)/d(a,b) objective.  Each
  // round's argmax fans out over candidate chunks; per-candidate scores
  // accumulate over j in serial order and the ascending-slot combine
  // keeps the serial first-wins tie-break, so the chosen pivots are
  // bit-identical at any thread count.
  std::vector<double> current(np, 0);  // best per-pair lower bound so far
  std::vector<bool> used(nc, false);
  std::vector<ObjectId> chosen;
  chosen.reserve(count);
  std::vector<double> slot_gain(pool.size());
  std::vector<uint32_t> slot_c(pool.size());
  while (chosen.size() < count) {
    std::fill(slot_gain.begin(), slot_gain.end(), -1.0);
    std::fill(slot_c.begin(), slot_c.end(), UINT32_MAX);
    ParallelFor(pool, nc, [&](size_t begin, size_t end, unsigned slot) {
      double bg = -1;
      uint32_t bc = UINT32_MAX;
      for (size_t c = begin; c < end; ++c) {
        if (used[c]) continue;
        const double* row = &diff[c * np];
        double score = 0;
        for (uint32_t j = 0; j < np; ++j) {
          score += std::max(current[j], row[j]) / d_ab[j];
        }
        if (score > bg) {
          bg = score;
          bc = static_cast<uint32_t>(c);
        }
      }
      slot_gain[slot] = bg;
      slot_c[slot] = bc;
    });
    double best_gain = -1;
    uint32_t best_c = UINT32_MAX;
    for (unsigned s = 0; s < pool.size(); ++s) {
      if (slot_gain[s] > best_gain) {
        best_gain = slot_gain[s];
        best_c = slot_c[s];
      }
    }
    if (best_c == UINT32_MAX) break;
    used[best_c] = true;
    chosen.push_back(candidates[best_c]);
    const double* row = &diff[size_t(best_c) * np];
    for (uint32_t j = 0; j < np; ++j) {
      current[j] = std::max(current[j], row[j]);
    }
  }
  return chosen;
}

PivotSet SelectSharedPivots(const Dataset& data, const Metric& metric,
                            uint32_t count,
                            const PivotSelectionOptions& options) {
  PerfCounters scratch;
  DistanceComputer dist(&metric, &scratch);
  std::vector<ObjectId> ids = SelectPivotsHFI(data, dist, count, options);
  return PivotSet(data, ids);
}

}  // namespace pmi
