#include "src/core/pivot_selection.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace pmi {
namespace {

/// Index of the sampled object farthest from `from`, distances through `d`.
uint32_t FarthestInSample(const Dataset& data,
                          const std::vector<uint32_t>& sample,
                          const DistanceComputer& d, ObjectId from) {
  double best = -1;
  uint32_t best_i = 0;
  ObjectView fv = data.view(from);
  for (uint32_t i = 0; i < sample.size(); ++i) {
    double dd = d(fv, data.view(sample[i]));
    if (dd > best) {
      best = dd;
      best_i = i;
    }
  }
  return best_i;
}

}  // namespace

std::vector<ObjectId> SelectPivotsRandom(const Dataset& data, uint32_t count,
                                         Rng& rng) {
  std::vector<uint32_t> ids = SampleDistinct(data.size(), count, rng);
  return {ids.begin(), ids.end()};
}

std::vector<ObjectId> SelectPivotsHF(const Dataset& data,
                                     const DistanceComputer& dist,
                                     uint32_t count,
                                     const PivotSelectionOptions& options) {
  assert(!data.empty());
  Rng rng(options.seed);
  std::vector<uint32_t> sample =
      SampleDistinct(data.size(), options.sample_size, rng);
  count = std::min<uint32_t>(count, static_cast<uint32_t>(sample.size()));

  // Classic hull-of-foci: start from a random object s, take f1 = farthest
  // from s, f2 = farthest from f1; the "edge" is d(f1, f2).  Then greedily
  // add the object whose distances to the chosen foci deviate least from
  // the edge (it lies near the hull, roughly equidistant from all foci).
  ObjectId seed_obj = sample[rng() % sample.size()];
  ObjectId f1 = sample[FarthestInSample(data, sample, dist, seed_obj)];
  std::vector<ObjectId> foci = {f1};
  if (count == 1) return foci;
  ObjectId f2 = sample[FarthestInSample(data, sample, dist, f1)];
  double edge = dist.metric().Distance(data.view(f1), data.view(f2));
  foci.push_back(f2);

  std::vector<double> error(sample.size(), 0);
  std::vector<bool> used(sample.size(), false);
  auto accumulate = [&](ObjectId focus) {
    ObjectView fv = data.view(focus);
    for (uint32_t i = 0; i < sample.size(); ++i) {
      if (used[i]) continue;
      error[i] += std::fabs(dist(data.view(sample[i]), fv) - edge);
    }
  };
  for (uint32_t i = 0; i < sample.size(); ++i) {
    if (sample[i] == f1 || sample[i] == f2) used[i] = true;
  }
  accumulate(f1);
  accumulate(f2);

  while (foci.size() < count) {
    double best = std::numeric_limits<double>::infinity();
    uint32_t best_i = UINT32_MAX;
    for (uint32_t i = 0; i < sample.size(); ++i) {
      if (!used[i] && error[i] < best) {
        best = error[i];
        best_i = i;
      }
    }
    if (best_i == UINT32_MAX) break;  // sample exhausted
    used[best_i] = true;
    foci.push_back(sample[best_i]);
    accumulate(sample[best_i]);
  }
  return foci;
}

std::vector<ObjectId> SelectPivotsHFI(const Dataset& data,
                                      const DistanceComputer& dist,
                                      uint32_t count,
                                      const PivotSelectionOptions& options,
                                      uint32_t candidate_count) {
  assert(!data.empty());
  if (candidate_count == 0) candidate_count = std::max(4 * count, 40u);
  std::vector<ObjectId> candidates =
      SelectPivotsHF(data, dist, candidate_count, options);
  if (candidates.size() <= count) return candidates;

  Rng rng(options.seed ^ 0x9e3779b97f4a7c15ULL);
  const uint32_t pairs = options.pair_sample;

  // Sample object pairs (a, b) and precompute all candidate distances.
  std::vector<ObjectId> a_ids, b_ids;
  std::vector<double> d_ab;
  a_ids.reserve(pairs);
  b_ids.reserve(pairs);
  d_ab.reserve(pairs);
  for (uint32_t i = 0; i < pairs; ++i) {
    ObjectId a = rng() % data.size();
    ObjectId b = rng() % data.size();
    double dd = dist(data.view(a), data.view(b));
    if (dd <= 0) continue;  // identical objects carry no signal
    a_ids.push_back(a);
    b_ids.push_back(b);
    d_ab.push_back(dd);
  }
  const uint32_t np = static_cast<uint32_t>(d_ab.size());
  if (np == 0) {  // degenerate dataset (all duplicates): any pivots do
    candidates.resize(count);
    return candidates;
  }

  // diff[c][j] = |d(a_j, p_c) - d(b_j, p_c)|, the pivot-space Linf
  // contribution of candidate c on pair j.
  std::vector<std::vector<double>> diff(candidates.size());
  for (uint32_t c = 0; c < candidates.size(); ++c) {
    diff[c].resize(np);
    ObjectView pv = data.view(candidates[c]);
    for (uint32_t j = 0; j < np; ++j) {
      double da = dist(data.view(a_ids[j]), pv);
      double db = dist(data.view(b_ids[j]), pv);
      diff[c][j] = std::fabs(da - db);
    }
  }

  // Greedy forward selection on the mean D(a,b)/d(a,b) objective.
  std::vector<double> current(np, 0);  // best per-pair lower bound so far
  std::vector<bool> used(candidates.size(), false);
  std::vector<ObjectId> chosen;
  chosen.reserve(count);
  while (chosen.size() < count) {
    double best_gain = -1;
    uint32_t best_c = UINT32_MAX;
    for (uint32_t c = 0; c < candidates.size(); ++c) {
      if (used[c]) continue;
      double score = 0;
      for (uint32_t j = 0; j < np; ++j) {
        score += std::max(current[j], diff[c][j]) / d_ab[j];
      }
      if (score > best_gain) {
        best_gain = score;
        best_c = c;
      }
    }
    if (best_c == UINT32_MAX) break;
    used[best_c] = true;
    chosen.push_back(candidates[best_c]);
    for (uint32_t j = 0; j < np; ++j) {
      current[j] = std::max(current[j], diff[best_c][j]);
    }
  }
  return chosen;
}

PivotSet SelectSharedPivots(const Dataset& data, const Metric& metric,
                            uint32_t count,
                            const PivotSelectionOptions& options) {
  PerfCounters scratch;
  DistanceComputer dist(&metric, &scratch);
  std::vector<ObjectId> ids = SelectPivotsHFI(data, dist, count, options);
  return PivotSet(data, ids);
}

}  // namespace pmi
