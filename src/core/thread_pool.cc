#include "src/core/thread_pool.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <memory>

namespace pmi {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads <= 1) return;
  workers_.reserve(threads - 1);
  for (unsigned i = 0; i + 1 < threads; ++i) {
    workers_.emplace_back([this, slot = i + 1] { WorkerLoop(slot); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::WorkerLoop(unsigned slot) {
  uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    start_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
    if (stop_) return;
    seen = generation_;
    if (slot >= job_slots_) continue;  // this region uses fewer slots
    const std::function<void(unsigned)>* job = job_;
    lock.unlock();
    (*job)(slot);
    lock.lock();
    if (--running_ == 0) done_cv_.notify_one();
  }
}

void ThreadPool::Dispatch(unsigned slots,
                          const std::function<void(unsigned)>& fn) {
  if (slots <= 1 || workers_.empty()) {
    for (unsigned s = 0; s < slots; ++s) fn(s);
    return;
  }
  std::lock_guard<std::mutex> region(dispatch_mu_);
  DispatchLocked(slots, fn);
}

bool ThreadPool::TryDispatch(unsigned slots,
                             const std::function<void(unsigned)>& fn) {
  if (slots <= 1 || workers_.empty()) {
    for (unsigned s = 0; s < slots; ++s) fn(s);
    return true;
  }
  std::unique_lock<std::mutex> region(dispatch_mu_, std::try_to_lock);
  if (!region.owns_lock()) return false;
  DispatchLocked(slots, fn);
  return true;
}

void ThreadPool::DispatchLocked(unsigned slots,
                                const std::function<void(unsigned)>& fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &fn;
    job_slots_ = slots;
    running_ = slots - 1;  // workers serve slots 1..slots-1
    ++generation_;
  }
  start_cv_.notify_all();
  fn(0);
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return running_ == 0; });
  job_ = nullptr;
}

unsigned ThreadPool::DefaultThreads() {
  if (const char* v = std::getenv("PMI_THREADS"); v != nullptr && *v != '\0') {
    errno = 0;
    char* end = nullptr;
    const unsigned long parsed = std::strtoul(v, &end, 10);
    if (errno == 0 && end != v && *end == '\0' && parsed >= 1 &&
        parsed <= 1024) {
      return static_cast<unsigned>(parsed);
    }
    std::fprintf(stderr,
                 "pmi: ignoring PMI_THREADS='%s' (want an integer in "
                 "[1, 1024])\n",
                 v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

namespace {
std::mutex& GlobalPoolMutex() {
  static std::mutex mu;
  return mu;
}
std::unique_ptr<ThreadPool>& GlobalPoolSlot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}
}  // namespace

ThreadPool& ThreadPool::Global() {
  std::lock_guard<std::mutex> lock(GlobalPoolMutex());
  std::unique_ptr<ThreadPool>& pool = GlobalPoolSlot();
  if (!pool) pool = std::make_unique<ThreadPool>(DefaultThreads());
  return *pool;
}

void ThreadPool::SetGlobalThreads(unsigned threads) {
  if (threads == 0) threads = DefaultThreads();
  std::lock_guard<std::mutex> lock(GlobalPoolMutex());
  std::unique_ptr<ThreadPool>& pool = GlobalPoolSlot();
  if (pool && pool->size() == threads) return;
  pool.reset();  // join the old workers before spawning the new pool
  pool = std::make_unique<ThreadPool>(threads);
}

}  // namespace pmi
