// Pivot sets and the pivot-space mapping (Section 2.3).
//
// Given pivots P = {p1..pl}, an object o maps to the point
// phi(o) = <d(o,p1), ..., d(o,pl)> in the vector space (R^l, Linf).  The
// PivotSet owns copies of the pivot objects so it stays valid across
// dataset updates and can be shared by every index (the paper's
// equal-footing requirement).

#ifndef PMI_CORE_PIVOTS_H_
#define PMI_CORE_PIVOTS_H_

#include <cassert>
#include <vector>

#include "src/core/dataset.h"
#include "src/core/metric.h"
#include "src/core/object.h"

namespace pmi {

/// An ordered set of pivot objects, copied out of their source dataset.
class PivotSet {
 public:
  PivotSet() = default;

  /// Copies the objects with the given ids out of `source`.
  PivotSet(const Dataset& source, const std::vector<ObjectId>& ids)
      : store_(source.kind() == ObjectKind::kVector
                   ? Dataset::Vectors(source.dim())
                   : Dataset::Strings()) {
    for (ObjectId id : ids) store_.Add(source.view(id));
  }

  uint32_t size() const { return store_.size(); }
  bool empty() const { return store_.empty(); }

  /// View of pivot i.
  ObjectView pivot(uint32_t i) const { return store_.view(i); }

  /// Maps `o` into pivot space: out[i] = d(o, p_i).  Costs size() distance
  /// computations, attributed through `dist`.
  void Map(const ObjectView& o, const DistanceComputer& dist,
           std::vector<double>* out) const {
    out->resize(size());
    for (uint32_t i = 0; i < size(); ++i) (*out)[i] = dist(o, pivot(i));
  }

  /// Approximate in-memory footprint of the pivot objects themselves.
  size_t memory_bytes() const { return store_.total_payload_bytes(); }

 private:
  Dataset store_ = Dataset::Vectors(0);
};

}  // namespace pmi

#endif  // PMI_CORE_PIVOTS_H_
