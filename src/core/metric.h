// Distance metrics (Section 2.1).
//
// A Metric is a symmetric, non-negative distance with identity and the
// triangle inequality; every pruning lemma in this library is sound only
// under these axioms, so tests/metric_test.cc property-checks them for
// each implementation.  The paper evaluates the L2-norm (LA), edit
// distance (Words), L1-norm (Color), and L-infinity norm (Synthetic).

#ifndef PMI_CORE_METRIC_H_
#define PMI_CORE_METRIC_H_

#include <memory>
#include <string>

#include "src/core/counters.h"
#include "src/core/object.h"

namespace pmi {

/// Abstract distance function over ObjectViews.
class Metric {
 public:
  virtual ~Metric() = default;

  /// The distance d(a, b).  Must satisfy the metric axioms.
  virtual double Distance(const ObjectView& a, const ObjectView& b) const = 0;

  /// Threshold-aware distance: when d(a, b) <= upper, returns exactly the
  /// value Distance(a, b) would (bit-identical -- implementations must
  /// accumulate in the same order); otherwise returns *some* value > upper
  /// (typically a partial lower bound, possibly +infinity).  Callers that
  /// only compare the result against `upper` (verification after Lemma-1
  /// pruning, kNN radius tests) get the same decisions as with Distance at
  /// a fraction of the cost: the vector norms early-abandon their
  /// accumulation, L2 compares squared sums and defers the sqrt to the
  /// success case, and edit distance runs a Ukkonen-style banded DP.
  virtual double BoundedDistance(const ObjectView& a, const ObjectView& b,
                                 double upper) const {
    (void)upper;
    return Distance(a, b);
  }

  /// True when the distance domain is discrete (integer-valued); BKT and
  /// FQT are only applicable to discrete metrics (Section 4).
  virtual bool discrete() const { return false; }

  /// An upper bound d+ on any pairwise distance in the domain; used by the
  /// M-index key mapping key(o) = d(p_i, o) + (i-1) * d+ (Section 5.3).
  virtual double max_distance() const = 0;

  virtual std::string name() const = 0;
};

/// L1 (Manhattan) norm over float vectors; used for the Color dataset.
class L1Metric final : public Metric {
 public:
  /// `domain_extent` is the per-coordinate value range width used to bound
  /// max_distance(); Color maps coordinates to [-255, 255].
  explicit L1Metric(uint32_t dim, double domain_extent)
      : dim_(dim), max_(domain_extent * dim) {}

  double Distance(const ObjectView& a, const ObjectView& b) const override;
  double BoundedDistance(const ObjectView& a, const ObjectView& b,
                         double upper) const override;
  double max_distance() const override { return max_; }
  std::string name() const override { return "L1"; }

 private:
  uint32_t dim_;
  double max_;
};

/// L2 (Euclidean) norm over float vectors; used for the LA dataset.
class L2Metric final : public Metric {
 public:
  explicit L2Metric(uint32_t dim, double domain_extent);

  double Distance(const ObjectView& a, const ObjectView& b) const override;
  double BoundedDistance(const ObjectView& a, const ObjectView& b,
                         double upper) const override;
  double max_distance() const override { return max_; }
  std::string name() const override { return "L2"; }

 private:
  uint32_t dim_;
  double max_;
};

/// L-infinity (Chebyshev) norm over float vectors; used for Synthetic.
/// With integer-valued coordinates this metric is discrete, enabling BKT
/// and FQT (the paper generates Synthetic as integers for this reason).
class LInfMetric final : public Metric {
 public:
  LInfMetric(uint32_t /*dim*/, double domain_extent, bool discrete_domain)
      : max_(domain_extent), discrete_(discrete_domain) {}

  double Distance(const ObjectView& a, const ObjectView& b) const override;
  double BoundedDistance(const ObjectView& a, const ObjectView& b,
                         double upper) const override;
  bool discrete() const override { return discrete_; }
  double max_distance() const override { return max_; }
  std::string name() const override { return "Linf"; }

 private:
  double max_;
  bool discrete_;
};

/// Levenshtein edit distance over strings; used for the Words dataset.
/// Discrete, with d+ = the maximum string length in the domain.
class EditDistanceMetric final : public Metric {
 public:
  explicit EditDistanceMetric(uint32_t max_len) : max_(max_len) {}

  double Distance(const ObjectView& a, const ObjectView& b) const override;
  double BoundedDistance(const ObjectView& a, const ObjectView& b,
                         double upper) const override;
  bool discrete() const override { return true; }
  double max_distance() const override { return max_; }
  std::string name() const override { return "edit"; }

 private:
  double max_;
};

/// Counting wrapper: all indexes compute distances exclusively through a
/// DistanceComputer so the compdists metric is attributed uniformly.
class DistanceComputer {
 public:
  DistanceComputer(const Metric* metric, PerfCounters* counters)
      : metric_(metric), counters_(counters) {}

  double operator()(const ObjectView& a, const ObjectView& b) const {
    ++counters_->dist_computations;
    return metric_->Distance(a, b);
  }

  /// Threshold-aware variant (see Metric::BoundedDistance).  Counts one
  /// distance computation whether or not the kernel abandons early: the
  /// compdists metric measures how many pairs the index had to *examine*,
  /// which is unchanged by how cheaply the examination concludes.
  double Bounded(const ObjectView& a, const ObjectView& b,
                 double upper) const {
    ++counters_->dist_computations;
    return metric_->BoundedDistance(a, b, upper);
  }

  const Metric& metric() const { return *metric_; }

  /// The counter sink this computer is bound to.  Parallel helpers that
  /// receive a DistanceComputer spawn per-thread shard-bound copies and
  /// fold the shard deltas back into this sink at the task boundary.
  PerfCounters* counters() const { return counters_; }

 private:
  const Metric* metric_;
  PerfCounters* counters_;
};

}  // namespace pmi

#endif  // PMI_CORE_METRIC_H_
