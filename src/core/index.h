// The common interface of all pivot-based metric indexes.
//
// Every index in the survey implements MetricIndex: build over a dataset +
// metric + shared pivot set, answer metric range queries (Definition 1)
// and metric k-nearest-neighbor queries (Definition 2), support the
// update operation of Section 6.3 (delete an object, insert it back), and
// report storage split into main-memory (I) and disk (D) bytes (Table 4).
//
// Cost accounting follows the template-method pattern: the public
// non-virtual entry points snapshot the per-index PerfCounters and a
// stopwatch around each *Impl call, so all indexes report compdists / PA /
// CPU time identically.

#ifndef PMI_CORE_INDEX_H_
#define PMI_CORE_INDEX_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/core/counters.h"
#include "src/core/dataset.h"
#include "src/core/knn_heap.h"
#include "src/core/metric.h"
#include "src/core/object.h"
#include "src/core/pivots.h"
#include "src/core/serialize.h"
#include "src/core/simd.h"
#include "src/core/status.h"
#include "src/core/thread_pool.h"
#include "src/storage/buffer_pool.h"

namespace pmi {

/// Tuning knobs.  Defaults reproduce the paper's setup (Section 6.1).
struct IndexOptions {
  /// Disk page size.  4 KB default; the paper uses 40 KB for CPT and the
  /// PM-tree on high-dimensional datasets (Color, Synthetic) because those
  /// two store objects inside tree nodes.
  uint32_t page_size = 4096;

  /// LRU buffer-pool capacity (bytes); 128 KB per the paper.  Sizes the
  /// logical PA simulation of every PagedFile the index creates, and the
  /// private physical pool when `buffer_pool` is not set.
  uint32_t cache_bytes = 128 * 1024;

  /// Shared physical page cache.  When set, every PagedFile of the index
  /// serves its page bytes through this pool (one cache budget across
  /// indexes and shards); when null, each PagedFile creates a private
  /// pool of `cache_bytes`.  Physical pool size never changes logical PA
  /// -- the paper-conformance quantity -- only pa_physical().  Held as a
  /// shared_ptr because read snapshots can outlive the facade that
  /// configured them.
  std::shared_ptr<BufferPool> buffer_pool;

  /// Seed for any internal randomized decision (BKT pivots, M-tree split
  /// sampling, ...).
  uint64_t seed = 42;

  // -- pivot-based trees ----------------------------------------------------
  /// MVPT arity m; the paper sets m = 5 (Section 4.3).
  uint32_t mvpt_arity = 5;
  /// Max objects in a tree leaf before splitting (BKT/FQT/MVPT).
  uint32_t tree_leaf_capacity = 16;
  /// BKT/FQT: number of equal-width distance buckets per node, used when
  /// the discrete distance domain is large (Section 4.1 discussion).
  uint32_t tree_fanout = 16;

  // -- EPT / EPT* -----------------------------------------------------------
  /// EPT group size m (pivots per random group).  0 = estimate via the
  /// cost model of Equation (1).
  uint32_t ept_group_size = 0;
  /// Candidate outlier count for PSA ("cp_scale is set to 40").
  uint32_t ept_cp_scale = 40;
  /// Sample size |S| used by PSA and by EPT's mu estimation.
  uint32_t ept_sample_size = 64;

  // -- M-index --------------------------------------------------------------
  /// Cluster split threshold ("maxnum, set to 1,600 in this paper").
  uint32_t mindex_maxnum = 1600;

  // -- SPB-tree -------------------------------------------------------------
  /// Bits per pivot dimension for the SFC grid. 0 = auto (<= 63 total).
  uint32_t spb_bits_per_dim = 0;
};

/// The single validation point for IndexOptions: every facade entry point
/// (and TryMakeIndex) routes options through here so bad knobs surface as
/// kInvalidArgument instead of undefined behavior deep in the storage
/// layer.  The harness constructors stay unchecked by design -- experiment
/// code uses the defaults.
Status ValidateOptions(const IndexOptions& options);

/// How a batch entry point executes its queries.
enum class BatchMode : uint8_t {
  /// Block-major (one pivot-table pass amortized over the whole batch)
  /// when the index implements it, query-major otherwise.
  kAuto = 0,
  /// Force the query-major reference path: a loop of per-query *Impl
  /// calls (parallelized over queries when allowed).  This is the frozen
  /// baseline the batch-equivalence tests and bench_throughput's
  /// batch_blocking section compare the block-major engine against.
  kQueryMajor = 1,
};

/// Costs of one build / query / update operation.  page_reads/page_writes
/// are the paper's logical PA; pool_hits/physical_reads/physical_writes
/// are what actually crossed the buffer-pool seam (see counters.h).
struct OpStats {
  uint64_t dist_computations = 0;
  uint64_t page_reads = 0;
  uint64_t page_writes = 0;
  uint64_t pool_hits = 0;
  uint64_t physical_reads = 0;
  uint64_t physical_writes = 0;
  double seconds = 0;

  uint64_t page_accesses() const { return page_reads + page_writes; }
  uint64_t pa_physical() const { return physical_reads + physical_writes; }

  OpStats& operator+=(const OpStats& o) {
    dist_computations += o.dist_computations;
    page_reads += o.page_reads;
    page_writes += o.page_writes;
    pool_hits += o.pool_hits;
    physical_reads += o.physical_reads;
    physical_writes += o.physical_writes;
    seconds += o.seconds;
    return *this;
  }
};

/// Abstract pivot-based metric index.
class MetricIndex {
 public:
  explicit MetricIndex(IndexOptions options = {}) : options_(options) {}
  virtual ~MetricIndex() = default;

  MetricIndex(const MetricIndex&) = delete;
  MetricIndex& operator=(const MetricIndex&) = delete;

  /// Short display name, e.g. "LAESA" or "M-index*".
  virtual std::string name() const = 0;

  /// True for the pivot-based external indexes (category 3).
  virtual bool disk_based() const = 0;

  /// Builds the index over every object of `data`.  The dataset, metric,
  /// and pivots must outlive the index.  Returns the construction cost.
  OpStats Build(const Dataset& data, const Metric& metric,
                const PivotSet& pivots) {
    data_ = &data;
    metric_ = &metric;
    pivots_ = pivots;
    return Measure([&] { BuildImpl(); });
  }

  /// MRQ(q, r): appends all ids o with d(q,o) <= r to `out` (unordered).
  OpStats RangeQuery(const ObjectView& q, double r,
                     std::vector<ObjectId>* out) const {
    out->clear();
    return Measure([&] { RangeImpl(q, r, out); });
  }

  /// MkNNQ(q, k): the k nearest objects, ascending by distance.
  OpStats KnnQuery(const ObjectView& q, size_t k,
                   std::vector<Neighbor>* out) const {
    out->clear();
    return Measure([&] { KnnImpl(q, k, out); });
  }

  /// Deep-copies this index into an independent instance bound to the
  /// same (data, metric, pivots).  The clone answers queries identically
  /// and its mutations never affect the source -- bulk state held in a
  /// PivotTable is shared copy-on-write at 256-row block granularity, so
  /// cloning is O(blocks) pointer copies and a single-row update touches
  /// one block.  This is the shadow-copy primitive of the concurrency
  /// layer (the writer clones, applies, publishes).  Fail-safe default:
  /// nullptr, meaning the index does not support shadow-copy updates and
  /// the facade keeps it on the serialized legacy path.
  virtual std::unique_ptr<MetricIndex> Clone() const { return nullptr; }

  /// True when independent queries may run concurrently on this index.
  /// Fail-safe default: false.  An index opts in only after an audit
  /// shows its query path shares no mutable state beyond the cost
  /// counters (which the batch entry points redirect to per-thread
  /// shards via CounterScope) -- per-query member scratch or query-path
  /// RNGs disqualify it.  Disk residency no longer does: pages are
  /// served through pinned BufferPool handles and the PagedFile's
  /// logical LRU simulation is mutex-guarded, so the disk indexes'
  /// read-only query paths opt in too (note that under a parallel
  /// query-major batch the *interleaving* of the logical LRU becomes
  /// thread-schedule-dependent, so logical PA totals of such batches are
  /// only pinned for serial execution; results never depend on it).
  /// Non-opted-in indexes keep the identical batch API and accounting;
  /// their batches just run through the serial loop.
  virtual bool concurrent_queries() const { return false; }

  /// True when this index implements the block-major batch engine
  /// (RangeBatchBlockImpl / KnnBatchBlockImpl): batch queries walk the
  /// pivot table block by block with every query of the batch filtered
  /// against each cache-resident column slab, instead of re-streaming
  /// the table once per query.  Results, compdists, and per-query stats
  /// are bit-identical to the query-major path by contract
  /// (tests/batch_invariance_test.cc pins this).
  virtual bool block_major_batches() const { return false; }

  /// Batch MRQ descriptor form: answers MRQ(queries[i], radii[i]) into
  /// (*out)[i] for every i -- per-query thresholds, so callers can mix
  /// selectivities in one batch.  Executes block-major when `mode`
  /// allows and the index supports it, otherwise fans the query-major
  /// loop across the global ThreadPool when concurrent_queries() allows.
  /// Per-query result buffers are element-private and every distance
  /// computation is counted into a per-query shard (folded into the
  /// index total at the end), so results, total compdists, and the
  /// optional `per_query` stats are identical across execution modes,
  /// thread counts, and SIMD dispatch levels.  Per-query stats carry
  /// compdists; `seconds` is meaningful only on the batch total (wall
  /// clock of the whole batch, the QPS denominator).  Page accesses are
  /// attributed per query through the same CounterScope routing as
  /// compdists (the disk indexes charge both levels via
  /// CounterScope::Active), so batch totals equal the serial sums.
  /// Like every MetricIndex operation, this is externally synchronized:
  /// one operation per index instance at a time (the non-atomic
  /// counters_ bookkeeping would race otherwise).  Concurrent batches on
  /// *distinct* indexes are fine -- their pool regions serialize, their
  /// accounting does not interleave.
  OpStats RangeQueryBatch(const std::vector<ObjectView>& queries,
                          const std::vector<double>& radii,
                          std::vector<std::vector<ObjectId>>* out,
                          std::vector<OpStats>* per_query = nullptr,
                          BatchMode mode = BatchMode::kAuto) const;

  /// Shared-read form of the batch MRQ: identical results and per-query
  /// accounting, but the index instance is treated as strictly immutable
  /// -- neither counters_ nor any other member is written, so any number
  /// of threads may run *Shared batches on one instance concurrently
  /// (the concurrency layer's readers all query the same published
  /// version).  The cost of a batch is returned, not accumulated: the
  /// instance's cumulative counters simply do not advance, which is the
  /// correct reading for a shared snapshot whose readers are mutually
  /// anonymous.  Requires concurrent_queries(); the query-major loop
  /// runs inline on the calling thread (each reader IS the parallelism),
  /// and the block-major engine's internal pool region degrades to
  /// inline execution whenever another region holds the pool (see
  /// ThreadPool::TryDispatch), which by the partitioning contract never
  /// changes results.
  OpStats RangeQueryBatchShared(const std::vector<ObjectView>& queries,
                                const std::vector<double>& radii,
                                std::vector<std::vector<ObjectId>>* out,
                                std::vector<OpStats>* per_query = nullptr,
                                BatchMode mode = BatchMode::kAuto) const;

  /// Uniform-radius convenience form of the batch MRQ descriptor.
  OpStats RangeQueryBatch(const std::vector<ObjectView>& queries, double r,
                          std::vector<std::vector<ObjectId>>* out) const {
    return RangeQueryBatch(queries, std::vector<double>(queries.size(), r),
                           out);
  }

  /// Batch MkNNQ descriptor form; same contract as RangeQueryBatch, with
  /// per-query neighbor counts.  The block-major path re-enters each
  /// block with every query's current (shrinking) heap radius.
  OpStats KnnQueryBatch(const std::vector<ObjectView>& queries,
                        const std::vector<size_t>& ks,
                        std::vector<std::vector<Neighbor>>* out,
                        std::vector<OpStats>* per_query = nullptr,
                        BatchMode mode = BatchMode::kAuto) const;

  /// Shared-read form of the batch MkNNQ (see RangeQueryBatchShared).
  OpStats KnnQueryBatchShared(const std::vector<ObjectView>& queries,
                              const std::vector<size_t>& ks,
                              std::vector<std::vector<Neighbor>>* out,
                              std::vector<OpStats>* per_query = nullptr,
                              BatchMode mode = BatchMode::kAuto) const;

  /// Uniform-k convenience form of the batch MkNNQ descriptor.
  OpStats KnnQueryBatch(const std::vector<ObjectView>& queries, size_t k,
                        std::vector<std::vector<Neighbor>>* out) const {
    return KnnQueryBatch(queries, std::vector<size_t>(queries.size(), k),
                         out);
  }

  /// Serializes the post-build state of this index into `out` so a later
  /// LoadState can restore it without recomputing any distances.  Indexes
  /// that have not implemented persistence return kUnimplemented (the
  /// facade then marks the snapshot "rebuild on open").  The dataset,
  /// metric, and shared pivots are NOT part of this payload -- the caller
  /// persists those once at the database level.
  Status SaveState(ByteSink* out) const { return SaveImpl(out); }

  /// Counterpart of Build for a persisted snapshot: binds the index to
  /// (data, metric, pivots) -- which must outlive it, exactly as with
  /// Build -- and restores the state written by SaveState.  On success
  /// the index answers queries identically to the instance that was
  /// saved; table indexes restore with zero distance computations (the
  /// optional `stats` out-param measures the restore like Build measures
  /// construction, so callers can verify that).  On failure the index is
  /// left unbuilt and must not be queried.
  Status LoadState(const Dataset& data, const Metric& metric,
                   const PivotSet& pivots, ByteSource* in,
                   OpStats* stats = nullptr) {
    data_ = &data;
    metric_ = &metric;
    pivots_ = pivots;
    PerfCounters before = counters_;
    Stopwatch watch;
    Status status = LoadImpl(in);
    OpStats op = Finish(before, watch);
    if (stats != nullptr) *stats = op;
    return status;
  }

  /// Re-inserts dataset object `id` (previously removed).
  OpStats Insert(ObjectId id) {
    return Measure([&] { InsertImpl(id); });
  }

  /// Removes dataset object `id` from the index.
  OpStats Remove(ObjectId id) {
    return Measure([&] { RemoveImpl(id); });
  }

  /// Main-memory footprint in bytes (the paper's "I" storage).
  virtual size_t memory_bytes() const = 0;

  /// Disk footprint in bytes (the paper's "D" storage); 0 for categories
  /// 1-2 except CPT.
  virtual size_t disk_bytes() const { return 0; }

  const IndexOptions& options() const { return options_; }
  const PivotSet& pivots() const { return pivots_; }

 protected:
  /// Copies the base-class binding and bookkeeping from `o` into this
  /// fresh instance -- the first step of every Clone() implementation.
  /// The clone starts from the source's cumulative counters so build
  /// cost attribution survives the shadow-copy chain.
  void CopyBaseFrom(const MetricIndex& o) {
    data_ = o.data_;
    metric_ = o.metric_;
    pivots_ = o.pivots_;
    options_ = o.options_;
    counters_ = o.counters_;
  }

  virtual void BuildImpl() = 0;
  virtual void RangeImpl(const ObjectView& q, double r,
                         std::vector<ObjectId>* out) const = 0;
  virtual void KnnImpl(const ObjectView& q, size_t k,
                       std::vector<Neighbor>* out) const = 0;
  virtual void InsertImpl(ObjectId id) = 0;
  virtual void RemoveImpl(ObjectId id) = 0;

  /// Snapshot hooks (see SaveState/LoadState).  Implemented by LAESA,
  /// EPT/EPT*, CPT, VPT/MVPT, and LinearScan; the default keeps every
  /// other index snapshot-free without touching it.
  virtual Status SaveImpl(ByteSink* out) const {
    (void)out;
    return UnimplementedError(name() + " does not implement snapshots");
  }
  virtual Status LoadImpl(ByteSource* in) {
    (void)in;
    return UnimplementedError(name() + " does not implement snapshots");
  }

  /// Block-major batch hooks.  An index that returns true from
  /// block_major_batches() overrides these to answer the whole batch in
  /// one block-major pass; returning false (the default) sends the batch
  /// down the query-major loop.  `per_query` points at one PerfCounters
  /// shard per query: every distance computation must be counted into
  /// its query's shard (the entry point folds them into counters_ and
  /// derives the per-query stats), and query i's results must be
  /// bit-identical -- contents and order -- to what RangeImpl/KnnImpl
  /// would produce for that query alone.
  virtual bool RangeBatchBlockImpl(const std::vector<ObjectView>& queries,
                                   const double* radii,
                                   std::vector<std::vector<ObjectId>>* out,
                                   PerfCounters* per_query) const {
    (void)queries;
    (void)radii;
    (void)out;
    (void)per_query;
    return false;
  }
  virtual bool KnnBatchBlockImpl(const std::vector<ObjectView>& queries,
                                 const size_t* ks,
                                 std::vector<std::vector<Neighbor>>* out,
                                 PerfCounters* per_query) const {
    (void)queries;
    (void)ks;
    (void)out;
    (void)per_query;
    return false;
  }

  /// Counting distance computer bound to this index's counters -- or, on
  /// a worker thread inside a parallel region, to that thread's
  /// CounterScope shard (folded back at the task boundary).
  DistanceComputer dist() const {
    return DistanceComputer(metric_, CounterScope::Active(&counters_));
  }

  const Dataset& data() const { return *data_; }
  const Metric& metric() const { return *metric_; }

  const Dataset* data_ = nullptr;
  const Metric* metric_ = nullptr;
  PivotSet pivots_;
  IndexOptions options_;
  mutable PerfCounters counters_;

 private:
  template <typename Fn>
  OpStats Measure(Fn&& fn) const {
    PerfCounters before = counters_;
    Stopwatch watch;
    fn();
    return Finish(before, watch);
  }

  /// Query-major batch loop: runs per_query(i) for i in [0, count), in
  /// parallel over fixed chunks when allowed, serially otherwise.  Each
  /// query runs under a CounterScope over its own per_query shard (every
  /// *Impl reaches its counters through dist(), which honors the
  /// innermost scope), so the attribution is per query -- exact at any
  /// thread count, since shards are element-indexed, not slot-indexed.
  /// The caller folds the shards into counters_.
  template <typename PerQuery>
  void RunQueryMajor(size_t count, PerfCounters* per_query,
                     PerQuery&& fn) const {
    // Serial cases never touch Global(): a process that only runs
    // serial batches stays worker-thread-free.
    if (concurrent_queries() && count > 1) {
      ThreadPool& pool = ThreadPool::Global();
      if (pool.size() > 1) {
        ParallelFor(pool, count, [&](size_t begin, size_t end, unsigned) {
          for (size_t i = begin; i < end; ++i) {
            // Count into a stack-local shard and store once: adjacent
            // per_query elements share cache lines across chunk
            // boundaries, and a per-distance increment there would
            // ping-pong the line between workers (the false sharing
            // CounterShard's alignas(64) exists to avoid).
            PerfCounters local;
            {
              CounterScope scope(&local);
              fn(i);
            }
            per_query[i] += local;
          }
        });
        return;
      }
    }
    for (size_t i = 0; i < count; ++i) {
      CounterScope scope(&per_query[i]);
      fn(i);
    }
  }

  OpStats Finish(const PerfCounters& before, const Stopwatch& watch) const {
    PerfCounters delta = counters_ - before;
    OpStats s;
    s.dist_computations = delta.dist_computations;
    s.page_reads = delta.page_reads;
    s.page_writes = delta.page_writes;
    s.pool_hits = delta.pool_hits;
    s.physical_reads = delta.physical_reads;
    s.physical_writes = delta.physical_writes;
    s.seconds = watch.Seconds();
    return s;
  }
};

/// Batched MRQ verification for the scan tables: walks the filter's
/// compacted candidate rows with a fixed prefetch lookahead so the
/// survivors' object payloads are in flight while BoundedDistance chews
/// on the current one, appending ids whose distance is within `r`.
inline void VerifyCandidatesWithPrefetch(
    const std::vector<uint32_t>& candidates,
    const std::vector<ObjectId>& oids, const Dataset& data,
    const DistanceComputer& d, const ObjectView& q, double r,
    std::vector<ObjectId>* out) {
  constexpr size_t kLookahead = 8;
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (i + kLookahead < candidates.size()) {
      PrefetchRead(data.view(oids[candidates[i + kLookahead]]).payload_ptr());
    }
    const ObjectId id = oids[candidates[i]];
    if (d.Bounded(q, data.view(id), r) <= r) out->push_back(id);
  }
}

}  // namespace pmi

#endif  // PMI_CORE_INDEX_H_
