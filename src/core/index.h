// The common interface of all pivot-based metric indexes.
//
// Every index in the survey implements MetricIndex: build over a dataset +
// metric + shared pivot set, answer metric range queries (Definition 1)
// and metric k-nearest-neighbor queries (Definition 2), support the
// update operation of Section 6.3 (delete an object, insert it back), and
// report storage split into main-memory (I) and disk (D) bytes (Table 4).
//
// Cost accounting follows the template-method pattern: the public
// non-virtual entry points snapshot the per-index PerfCounters and a
// stopwatch around each *Impl call, so all indexes report compdists / PA /
// CPU time identically.

#ifndef PMI_CORE_INDEX_H_
#define PMI_CORE_INDEX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/counters.h"
#include "src/core/dataset.h"
#include "src/core/knn_heap.h"
#include "src/core/metric.h"
#include "src/core/object.h"
#include "src/core/pivots.h"
#include "src/core/serialize.h"
#include "src/core/simd.h"
#include "src/core/status.h"
#include "src/core/thread_pool.h"

namespace pmi {

/// Tuning knobs.  Defaults reproduce the paper's setup (Section 6.1).
struct IndexOptions {
  /// Disk page size.  4 KB default; the paper uses 40 KB for CPT and the
  /// PM-tree on high-dimensional datasets (Color, Synthetic) because those
  /// two store objects inside tree nodes.
  uint32_t page_size = 4096;

  /// LRU buffer-pool capacity (bytes); 128 KB per the paper.
  uint32_t cache_bytes = 128 * 1024;

  /// Seed for any internal randomized decision (BKT pivots, M-tree split
  /// sampling, ...).
  uint64_t seed = 42;

  // -- pivot-based trees ----------------------------------------------------
  /// MVPT arity m; the paper sets m = 5 (Section 4.3).
  uint32_t mvpt_arity = 5;
  /// Max objects in a tree leaf before splitting (BKT/FQT/MVPT).
  uint32_t tree_leaf_capacity = 16;
  /// BKT/FQT: number of equal-width distance buckets per node, used when
  /// the discrete distance domain is large (Section 4.1 discussion).
  uint32_t tree_fanout = 16;

  // -- EPT / EPT* -----------------------------------------------------------
  /// EPT group size m (pivots per random group).  0 = estimate via the
  /// cost model of Equation (1).
  uint32_t ept_group_size = 0;
  /// Candidate outlier count for PSA ("cp_scale is set to 40").
  uint32_t ept_cp_scale = 40;
  /// Sample size |S| used by PSA and by EPT's mu estimation.
  uint32_t ept_sample_size = 64;

  // -- M-index --------------------------------------------------------------
  /// Cluster split threshold ("maxnum, set to 1,600 in this paper").
  uint32_t mindex_maxnum = 1600;

  // -- SPB-tree -------------------------------------------------------------
  /// Bits per pivot dimension for the SFC grid. 0 = auto (<= 63 total).
  uint32_t spb_bits_per_dim = 0;
};

/// The single validation point for IndexOptions: every facade entry point
/// (and TryMakeIndex) routes options through here so bad knobs surface as
/// kInvalidArgument instead of undefined behavior deep in the storage
/// layer.  The harness constructors stay unchecked by design -- experiment
/// code uses the defaults.
Status ValidateOptions(const IndexOptions& options);

/// Costs of one build / query / update operation.
struct OpStats {
  uint64_t dist_computations = 0;
  uint64_t page_reads = 0;
  uint64_t page_writes = 0;
  double seconds = 0;

  uint64_t page_accesses() const { return page_reads + page_writes; }

  OpStats& operator+=(const OpStats& o) {
    dist_computations += o.dist_computations;
    page_reads += o.page_reads;
    page_writes += o.page_writes;
    seconds += o.seconds;
    return *this;
  }
};

/// Abstract pivot-based metric index.
class MetricIndex {
 public:
  explicit MetricIndex(IndexOptions options = {}) : options_(options) {}
  virtual ~MetricIndex() = default;

  MetricIndex(const MetricIndex&) = delete;
  MetricIndex& operator=(const MetricIndex&) = delete;

  /// Short display name, e.g. "LAESA" or "M-index*".
  virtual std::string name() const = 0;

  /// True for the pivot-based external indexes (category 3).
  virtual bool disk_based() const = 0;

  /// Builds the index over every object of `data`.  The dataset, metric,
  /// and pivots must outlive the index.  Returns the construction cost.
  OpStats Build(const Dataset& data, const Metric& metric,
                const PivotSet& pivots) {
    data_ = &data;
    metric_ = &metric;
    pivots_ = pivots;
    return Measure([&] { BuildImpl(); });
  }

  /// MRQ(q, r): appends all ids o with d(q,o) <= r to `out` (unordered).
  OpStats RangeQuery(const ObjectView& q, double r,
                     std::vector<ObjectId>* out) const {
    out->clear();
    return Measure([&] { RangeImpl(q, r, out); });
  }

  /// MkNNQ(q, k): the k nearest objects, ascending by distance.
  OpStats KnnQuery(const ObjectView& q, size_t k,
                   std::vector<Neighbor>* out) const {
    out->clear();
    return Measure([&] { KnnImpl(q, k, out); });
  }

  /// True when independent queries may run concurrently on this index.
  /// Fail-safe default: false.  An index opts in only after an audit
  /// shows its query path shares no mutable state beyond the cost
  /// counters (which the batch entry points redirect to per-thread
  /// shards via CounterScope) -- per-query member scratch, query-path
  /// RNGs, or any disk buffer pool disqualify it.  Non-opted-in indexes
  /// keep the identical batch API and accounting; their batches just run
  /// through the serial loop.
  virtual bool concurrent_queries() const { return false; }

  /// Batch MRQ: answers MRQ(queries[i], r) into (*out)[i] for every i,
  /// fanning the batch across the global ThreadPool when
  /// concurrent_queries() allows.  Per-query result buffers are
  /// element-private and per-thread counter shards are folded at the
  /// barrier, so results and total compdists are identical to looping
  /// RangeQuery -- at any thread count.  `seconds` is the wall-clock time
  /// of the whole batch (the figure QPS derives from), not a per-thread
  /// sum.  Like every MetricIndex operation, this is externally
  /// synchronized: one operation per index instance at a time (the
  /// non-atomic counters_ bookkeeping would race otherwise).  Concurrent
  /// batches on *distinct* indexes are fine -- their pool regions
  /// serialize, their accounting does not interleave.
  OpStats RangeQueryBatch(const std::vector<ObjectView>& queries, double r,
                          std::vector<std::vector<ObjectId>>* out) const {
    out->assign(queries.size(), {});
    return MeasureBatch(queries.size(), [&](size_t i) {
      RangeImpl(queries[i], r, &(*out)[i]);
    });
  }

  /// Batch MkNNQ; same contract as RangeQueryBatch.
  OpStats KnnQueryBatch(const std::vector<ObjectView>& queries, size_t k,
                        std::vector<std::vector<Neighbor>>* out) const {
    out->assign(queries.size(), {});
    return MeasureBatch(queries.size(), [&](size_t i) {
      KnnImpl(queries[i], k, &(*out)[i]);
    });
  }

  /// Serializes the post-build state of this index into `out` so a later
  /// LoadState can restore it without recomputing any distances.  Indexes
  /// that have not implemented persistence return kUnimplemented (the
  /// facade then marks the snapshot "rebuild on open").  The dataset,
  /// metric, and shared pivots are NOT part of this payload -- the caller
  /// persists those once at the database level.
  Status SaveState(ByteSink* out) const { return SaveImpl(out); }

  /// Counterpart of Build for a persisted snapshot: binds the index to
  /// (data, metric, pivots) -- which must outlive it, exactly as with
  /// Build -- and restores the state written by SaveState.  On success
  /// the index answers queries identically to the instance that was
  /// saved; table indexes restore with zero distance computations (the
  /// optional `stats` out-param measures the restore like Build measures
  /// construction, so callers can verify that).  On failure the index is
  /// left unbuilt and must not be queried.
  Status LoadState(const Dataset& data, const Metric& metric,
                   const PivotSet& pivots, ByteSource* in,
                   OpStats* stats = nullptr) {
    data_ = &data;
    metric_ = &metric;
    pivots_ = pivots;
    PerfCounters before = counters_;
    Stopwatch watch;
    Status status = LoadImpl(in);
    OpStats op = Finish(before, watch);
    if (stats != nullptr) *stats = op;
    return status;
  }

  /// Re-inserts dataset object `id` (previously removed).
  OpStats Insert(ObjectId id) {
    return Measure([&] { InsertImpl(id); });
  }

  /// Removes dataset object `id` from the index.
  OpStats Remove(ObjectId id) {
    return Measure([&] { RemoveImpl(id); });
  }

  /// Main-memory footprint in bytes (the paper's "I" storage).
  virtual size_t memory_bytes() const = 0;

  /// Disk footprint in bytes (the paper's "D" storage); 0 for categories
  /// 1-2 except CPT.
  virtual size_t disk_bytes() const { return 0; }

  const IndexOptions& options() const { return options_; }
  const PivotSet& pivots() const { return pivots_; }

 protected:
  virtual void BuildImpl() = 0;
  virtual void RangeImpl(const ObjectView& q, double r,
                         std::vector<ObjectId>* out) const = 0;
  virtual void KnnImpl(const ObjectView& q, size_t k,
                       std::vector<Neighbor>* out) const = 0;
  virtual void InsertImpl(ObjectId id) = 0;
  virtual void RemoveImpl(ObjectId id) = 0;

  /// Snapshot hooks (see SaveState/LoadState).  Implemented by LAESA,
  /// EPT/EPT*, CPT, VPT/MVPT, and LinearScan; the default keeps every
  /// other index snapshot-free without touching it.
  virtual Status SaveImpl(ByteSink* out) const {
    (void)out;
    return UnimplementedError(name() + " does not implement snapshots");
  }
  virtual Status LoadImpl(ByteSource* in) {
    (void)in;
    return UnimplementedError(name() + " does not implement snapshots");
  }

  /// Counting distance computer bound to this index's counters -- or, on
  /// a worker thread inside a parallel region, to that thread's
  /// CounterScope shard (folded back at the task boundary).
  DistanceComputer dist() const {
    return DistanceComputer(metric_, CounterScope::Active(&counters_));
  }

  const Dataset& data() const { return *data_; }
  const Metric& metric() const { return *metric_; }

  const Dataset* data_ = nullptr;
  const Metric* metric_ = nullptr;
  PivotSet pivots_;
  IndexOptions options_;
  mutable PerfCounters counters_;

 private:
  template <typename Fn>
  OpStats Measure(Fn&& fn) const {
    PerfCounters before = counters_;
    Stopwatch watch;
    fn();
    return Finish(before, watch);
  }

  /// Batch template method: runs per_query(i) for i in [0, count), in
  /// parallel over fixed chunks when allowed, serially otherwise.  The
  /// parallel path counts into per-slot shards (every *Impl reaches its
  /// counters through dist(), which honors the CounterScope each worker
  /// opens) and folds them into counters_ at the barrier.
  template <typename PerQuery>
  OpStats MeasureBatch(size_t count, PerQuery&& per_query) const {
    PerfCounters before = counters_;
    Stopwatch watch;
    // Serial cases never touch Global(): a process that only runs
    // serial batches stays worker-thread-free.
    if (!concurrent_queries() || count <= 1) {
      for (size_t i = 0; i < count; ++i) per_query(i);
      return Finish(before, watch);
    }
    ThreadPool& pool = ThreadPool::Global();
    if (pool.size() <= 1) {
      for (size_t i = 0; i < count; ++i) per_query(i);
      return Finish(before, watch);
    }
    std::vector<CounterShard> shards(pool.size());
    ParallelFor(pool, count, [&](size_t begin, size_t end, unsigned slot) {
      CounterScope scope(&shards[slot].counters);
      for (size_t i = begin; i < end; ++i) per_query(i);
    });
    FoldCounters(shards, &counters_);
    return Finish(before, watch);
  }

  OpStats Finish(const PerfCounters& before, const Stopwatch& watch) const {
    PerfCounters delta = counters_ - before;
    OpStats s;
    s.dist_computations = delta.dist_computations;
    s.page_reads = delta.page_reads;
    s.page_writes = delta.page_writes;
    s.seconds = watch.Seconds();
    return s;
  }
};

/// Batched MRQ verification for the scan tables: walks the filter's
/// compacted candidate rows with a fixed prefetch lookahead so the
/// survivors' object payloads are in flight while BoundedDistance chews
/// on the current one, appending ids whose distance is within `r`.
inline void VerifyCandidatesWithPrefetch(
    const std::vector<uint32_t>& candidates,
    const std::vector<ObjectId>& oids, const Dataset& data,
    const DistanceComputer& d, const ObjectView& q, double r,
    std::vector<ObjectId>* out) {
  constexpr size_t kLookahead = 8;
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (i + kLookahead < candidates.size()) {
      PrefetchRead(data.view(oids[candidates[i + kLookahead]]).payload_ptr());
    }
    const ObjectId id = oids[candidates[i]];
    if (d.Bounded(q, data.view(id), r) <= r) out->push_back(id);
  }
}

}  // namespace pmi

#endif  // PMI_CORE_INDEX_H_
