// Byte-level serialization substrate for index snapshots.
//
// A ByteSink appends fixed-width little-endian primitives to a growing
// byte string; a ByteSource is its bounds-checked reading cursor, whose
// getters return Status instead of crashing so a truncated or corrupt
// snapshot file surfaces as kDataLoss at the facade, never as UB deep in
// an index loader.  On the (little-endian) platforms this library
// targets, primitive writes are straight memcpys.
//
// Free helpers serialize the core value types (Dataset, PivotSet,
// PivotTable) through their public APIs so the snapshot format has no
// privileged access to their internals.

#ifndef PMI_CORE_SERIALIZE_H_
#define PMI_CORE_SERIALIZE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/dataset.h"
#include "src/core/pivot_table.h"
#include "src/core/pivots.h"
#include "src/core/status.h"

namespace pmi {

/// Append-only byte buffer with primitive encoders.
class ByteSink {
 public:
  void PutU8(uint8_t v) { Raw(&v, 1); }
  void PutU32(uint32_t v) { Raw(&v, 4); }
  void PutU64(uint64_t v) { Raw(&v, 8); }
  void PutDouble(double v) { Raw(&v, 8); }
  void PutFloat(float v) { Raw(&v, 4); }

  /// Length-prefixed byte string.
  void PutString(std::string_view s) {
    PutU64(s.size());
    bytes_.append(s.data(), s.size());
  }

  /// Length-prefixed vector of fixed-width elements.
  template <typename T>
  void PutVector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    PutU64(v.size());
    if (!v.empty()) Raw(v.data(), v.size() * sizeof(T));
  }

  /// Raw bytes, no length prefix.
  void Raw(const void* data, size_t n) {
    bytes_.append(reinterpret_cast<const char*>(data), n);
  }

  const std::string& bytes() const { return bytes_; }
  std::string&& TakeBytes() { return std::move(bytes_); }
  size_t size() const { return bytes_.size(); }

 private:
  std::string bytes_;
};

/// Bounds-checked reading cursor over a byte buffer.
class ByteSource {
 public:
  explicit ByteSource(std::string_view bytes) : bytes_(bytes) {}

  size_t remaining() const { return bytes_.size() - pos_; }
  bool exhausted() const { return remaining() == 0; }

  Status GetU8(uint8_t* v) { return Raw(v, 1); }
  Status GetU32(uint32_t* v) { return Raw(v, 4); }
  Status GetU64(uint64_t* v) { return Raw(v, 8); }
  Status GetDouble(double* v) { return Raw(v, 8); }
  Status GetFloat(float* v) { return Raw(v, 4); }

  Status GetString(std::string* out) {
    uint64_t n = 0;
    PMI_RETURN_IF_ERROR(GetU64(&n));
    if (n > remaining()) return TruncatedError(n);
    out->assign(bytes_.data() + pos_, n);
    pos_ += n;
    return OkStatus();
  }

  template <typename T>
  Status GetVector(std::vector<T>* out) {
    static_assert(std::is_trivially_copyable_v<T>);
    uint64_t n = 0;
    PMI_RETURN_IF_ERROR(GetU64(&n));
    if (n > remaining() / sizeof(T)) return TruncatedError(n * sizeof(T));
    out->resize(n);
    if (n > 0) return Raw(out->data(), n * sizeof(T));
    return OkStatus();
  }

  Status Raw(void* out, size_t n) {
    if (n > remaining()) return TruncatedError(n);
    std::memcpy(out, bytes_.data() + pos_, n);
    pos_ += n;
    return OkStatus();
  }

 private:
  Status TruncatedError(uint64_t wanted) const {
    return DataLossError("snapshot truncated: need " + std::to_string(wanted) +
                         " bytes, have " + std::to_string(remaining()));
  }

  std::string_view bytes_;
  size_t pos_ = 0;
};

/// FNV-1a 64-bit hash; the snapshot integrity checksum.
inline uint64_t Fnv1a64(std::string_view bytes) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

// -- core value types ---------------------------------------------------------

inline void SerializeDataset(const Dataset& data, ByteSink* out) {
  out->PutU8(static_cast<uint8_t>(data.kind()));
  out->PutU32(data.dim());
  out->PutU32(data.size());
  if (data.kind() == ObjectKind::kVector) {
    for (ObjectId id = 0; id < data.size(); ++id) {
      out->Raw(data.view(id).vec, size_t(data.dim()) * sizeof(float));
    }
  } else {
    for (ObjectId id = 0; id < data.size(); ++id) {
      out->PutString(data.view(id).AsString());
    }
  }
}

inline StatusOr<Dataset> DeserializeDataset(ByteSource* in) {
  uint8_t kind = 0;
  uint32_t dim = 0, n = 0;
  PMI_RETURN_IF_ERROR(in->GetU8(&kind));
  PMI_RETURN_IF_ERROR(in->GetU32(&dim));
  PMI_RETURN_IF_ERROR(in->GetU32(&n));
  if (kind > static_cast<uint8_t>(ObjectKind::kString)) {
    return DataLossError("snapshot dataset has unknown object kind");
  }
  if (static_cast<ObjectKind>(kind) == ObjectKind::kVector) {
    if (dim == 0 && n > 0) {
      return DataLossError("snapshot vector dataset has dim 0");
    }
    if (n > 0 && size_t(dim) > in->remaining() / sizeof(float)) {
      return DataLossError("snapshot vector dataset wider than its payload");
    }
    Dataset data = Dataset::Vectors(dim);
    std::vector<float> row(dim);
    for (uint32_t i = 0; i < n; ++i) {
      PMI_RETURN_IF_ERROR(in->Raw(row.data(), size_t(dim) * sizeof(float)));
      data.AddVector(row.data());
    }
    return data;
  }
  Dataset data = Dataset::Strings();
  std::string s;
  for (uint32_t i = 0; i < n; ++i) {
    PMI_RETURN_IF_ERROR(in->GetString(&s));
    data.AddString(s);
  }
  return data;
}

inline void SerializePivotSet(const PivotSet& pivots, ByteSink* out) {
  // A PivotSet is its owned copy of the pivot objects; persist those as a
  // standalone dataset and rebuild from it (ids 0..l-1) on load.
  if (pivots.empty()) {
    SerializeDataset(Dataset::Vectors(0), out);
    return;
  }
  ObjectView first = pivots.pivot(0);
  Dataset store = first.kind == ObjectKind::kVector
                      ? Dataset::Vectors(first.dim)
                      : Dataset::Strings();
  for (uint32_t i = 0; i < pivots.size(); ++i) store.Add(pivots.pivot(i));
  SerializeDataset(store, out);
}

inline StatusOr<PivotSet> DeserializePivotSet(ByteSource* in) {
  PMI_ASSIGN_OR_RETURN(Dataset store, DeserializeDataset(in));
  std::vector<ObjectId> ids(store.size());
  for (uint32_t i = 0; i < store.size(); ++i) ids[i] = i;
  return PivotSet(store, ids);
}

inline void SerializePivotTable(const PivotTable& table, ByteSink* out) {
  out->PutU8(table.per_row_pivots() ? 1 : 0);
  out->PutU32(table.width());
  out->PutU64(table.rows());
  for (uint32_t p = 0; p < table.width(); ++p) {
    // Column p block by block; the concatenated slabs are byte-identical
    // to the contiguous column the pre-chunked format wrote.
    for (size_t base = 0; base < table.rows(); base += PivotTable::kScanBlock) {
      const size_t count =
          std::min<size_t>(PivotTable::kScanBlock, table.rows() - base);
      out->Raw(table.block_column(p, base), count * sizeof(double));
    }
  }
  if (table.per_row_pivots()) {
    for (uint32_t p = 0; p < table.width(); ++p) {
      for (size_t row = 0; row < table.rows(); ++row) {
        out->PutU32(table.pivot_index(row, p));
      }
    }
  }
}

/// Allocation guard for DeserializePivotTable: pivot counts in this
/// codebase are user-chosen small numbers, so anything past this is a
/// corrupt length field, not a real table.
constexpr uint32_t kMaxPivotTableWidth = 1u << 20;

inline Status DeserializePivotTable(ByteSource* in, PivotTable* table) {
  uint8_t per_row = 0;
  uint32_t width = 0;
  uint64_t rows = 0;
  PMI_RETURN_IF_ERROR(in->GetU8(&per_row));
  PMI_RETURN_IF_ERROR(in->GetU32(&width));
  PMI_RETURN_IF_ERROR(in->GetU64(&rows));
  // Size fields must be plausible against the remaining payload before
  // any allocation happens -- a corrupt (or crafted, checksums are not
  // cryptographic) length is a kDataLoss error, not a bad_alloc crash.
  // An empty table (rows == 0) carries no cells at all, so its width
  // cannot be bounded by the payload; Reset still allocates per-column
  // headers, so width gets an absolute cap instead.  A table drained by
  // removes is a legitimate state a checkpoint must round-trip.
  const uint64_t cell_bytes =
      sizeof(double) + (per_row != 0 ? sizeof(uint32_t) : 0);
  if (width > 0 && rows > 0 &&
      rows > in->remaining() / (uint64_t(width) * cell_bytes)) {
    return DataLossError("snapshot pivot table larger than its payload");
  }
  if (width > kMaxPivotTableWidth) {
    return DataLossError("snapshot pivot table width is implausible");
  }
  table->Reset(width, per_row != 0);
  table->ResizeRows(rows);
  std::vector<double> col(rows);
  std::vector<uint32_t> pidx_col(per_row != 0 ? rows : 0);
  for (uint32_t p = 0; p < width; ++p) {
    PMI_RETURN_IF_ERROR(in->Raw(col.data(), rows * sizeof(double)));
    for (size_t row = 0; row < rows; ++row) table->SetCell(row, p, col[row]);
  }
  if (per_row != 0) {
    for (uint32_t p = 0; p < width; ++p) {
      PMI_RETURN_IF_ERROR(
          in->Raw(pidx_col.data(), rows * sizeof(uint32_t)));
      for (size_t row = 0; row < rows; ++row) {
        table->SetPivotIndex(row, p, pidx_col[row]);
      }
    }
  }
  return OkStatus();
}

}  // namespace pmi

#endif  // PMI_CORE_SERIALIZE_H_
