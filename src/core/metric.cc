#include "src/core/metric.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <vector>

namespace pmi {

double L1Metric::Distance(const ObjectView& a, const ObjectView& b) const {
  assert(a.kind == ObjectKind::kVector && b.kind == ObjectKind::kVector);
  assert(a.dim == dim_ && b.dim == dim_);
  double sum = 0;
  for (uint32_t i = 0; i < dim_; ++i) sum += std::fabs(double(a.vec[i]) - b.vec[i]);
  return sum;
}

L2Metric::L2Metric(uint32_t dim, double domain_extent)
    : dim_(dim), max_(domain_extent * std::sqrt(double(dim))) {}

double L2Metric::Distance(const ObjectView& a, const ObjectView& b) const {
  assert(a.kind == ObjectKind::kVector && b.kind == ObjectKind::kVector);
  assert(a.dim == dim_ && b.dim == dim_);
  double sum = 0;
  for (uint32_t i = 0; i < dim_; ++i) {
    double diff = double(a.vec[i]) - b.vec[i];
    sum += diff * diff;
  }
  return std::sqrt(sum);
}

double LInfMetric::Distance(const ObjectView& a, const ObjectView& b) const {
  assert(a.kind == ObjectKind::kVector && b.kind == ObjectKind::kVector);
  assert(a.dim == b.dim);
  double best = 0;
  for (uint32_t i = 0; i < a.dim; ++i) {
    best = std::max(best, std::fabs(double(a.vec[i]) - b.vec[i]));
  }
  return best;
}

double EditDistanceMetric::Distance(const ObjectView& a,
                                    const ObjectView& b) const {
  assert(a.kind == ObjectKind::kString && b.kind == ObjectKind::kString);
  // Standard two-row Levenshtein DP.  The shorter string indexes the rows
  // to keep the working set minimal; distances here are small (<= 34 for
  // Words), so no banding is needed for correctness or speed.
  std::string_view s = a.AsString(), t = b.AsString();
  if (s.size() > t.size()) std::swap(s, t);
  const uint32_t m = static_cast<uint32_t>(s.size());
  const uint32_t n = static_cast<uint32_t>(t.size());
  if (m == 0) return n;

  // Thread-local scratch avoids per-call allocation on the hot path.
  thread_local std::vector<uint32_t> row;
  row.resize(m + 1);
  for (uint32_t i = 0; i <= m; ++i) row[i] = i;
  for (uint32_t j = 1; j <= n; ++j) {
    uint32_t prev = row[0];  // DP[j-1][0]
    row[0] = j;
    const char tj = t[j - 1];
    for (uint32_t i = 1; i <= m; ++i) {
      uint32_t cur = row[i];  // DP[j-1][i]
      uint32_t subst = prev + (s[i - 1] != tj);
      row[i] = std::min({row[i - 1] + 1, cur + 1, subst});
      prev = cur;
    }
  }
  return row[m];
}

}  // namespace pmi
