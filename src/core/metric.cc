#include "src/core/metric.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

namespace pmi {
namespace {

// The early-abandon kernels check the running partial against the bound
// every kAbandonStride coordinates: often enough that a hopeless
// verification stops after a few cache lines, rarely enough that the check
// does not break auto-vectorization of the accumulation in between.
constexpr uint32_t kAbandonStride = 16;

// Inflated squared bound for the L2 abandon test.  The partial sum of
// squares grows monotonically (non-negative terms), so `partial > bound`
// proves the final distance exceeds `upper` -- but only if `bound` is
// guaranteed not to round below upper^2.  A few ulps of slack costs at
// worst one wasted stride; shaving the bound too tight would corrupt
// results, so the comparison errs on the generous side.
inline double InflatedSquare(double upper) {
  double u2 = upper * upper;
  return u2 + 4 * std::numeric_limits<double>::epsilon() * u2 +
         std::numeric_limits<double>::min();
}

}  // namespace

double L1Metric::Distance(const ObjectView& a, const ObjectView& b) const {
  assert(a.kind == ObjectKind::kVector && b.kind == ObjectKind::kVector);
  assert(a.dim == dim_ && b.dim == dim_);
  const float* __restrict pa = a.vec;
  const float* __restrict pb = b.vec;
  double sum = 0;
  for (uint32_t i = 0; i < dim_; ++i) sum += std::fabs(double(pa[i]) - pb[i]);
  return sum;
}

double L1Metric::BoundedDistance(const ObjectView& a, const ObjectView& b,
                                 double upper) const {
  assert(a.kind == ObjectKind::kVector && b.kind == ObjectKind::kVector);
  assert(a.dim == dim_ && b.dim == dim_);
  const float* __restrict pa = a.vec;
  const float* __restrict pb = b.vec;
  // Identical accumulation order to Distance(): a completed run returns a
  // bit-identical value.  The partial sum is a monotone lower bound, so
  // partial > upper proves d(a, b) > upper and the partial itself is a
  // valid "> upper" return value.
  double sum = 0;
  uint32_t i = 0;
  for (; i + kAbandonStride <= dim_; i += kAbandonStride) {
    for (uint32_t j = i; j < i + kAbandonStride; ++j) {
      sum += std::fabs(double(pa[j]) - pb[j]);
    }
    if (sum > upper) return sum;
  }
  for (; i < dim_; ++i) sum += std::fabs(double(pa[i]) - pb[i]);
  return sum;
}

L2Metric::L2Metric(uint32_t dim, double domain_extent)
    : dim_(dim), max_(domain_extent * std::sqrt(double(dim))) {}

double L2Metric::Distance(const ObjectView& a, const ObjectView& b) const {
  assert(a.kind == ObjectKind::kVector && b.kind == ObjectKind::kVector);
  assert(a.dim == dim_ && b.dim == dim_);
  const float* __restrict pa = a.vec;
  const float* __restrict pb = b.vec;
  double sum = 0;
  for (uint32_t i = 0; i < dim_; ++i) {
    double diff = double(pa[i]) - pb[i];
    sum += diff * diff;
  }
  return std::sqrt(sum);
}

double L2Metric::BoundedDistance(const ObjectView& a, const ObjectView& b,
                                 double upper) const {
  assert(a.kind == ObjectKind::kVector && b.kind == ObjectKind::kVector);
  assert(a.dim == dim_ && b.dim == dim_);
  if (upper < 0) return std::numeric_limits<double>::infinity();
  const float* __restrict pa = a.vec;
  const float* __restrict pb = b.vec;
  // Squared-space comparison: no sqrt unless the candidate survives.  The
  // abandon bound is inflated by a few ulps so a borderline sum never
  // abandons incorrectly; a completed loop falls through to the exact
  // sqrt, preserving bit-identity with Distance().
  const double bound = InflatedSquare(upper);
  double sum = 0;
  uint32_t i = 0;
  for (; i + kAbandonStride <= dim_; i += kAbandonStride) {
    for (uint32_t j = i; j < i + kAbandonStride; ++j) {
      double diff = double(pa[j]) - pb[j];
      sum += diff * diff;
    }
    if (sum > bound) return std::numeric_limits<double>::infinity();
  }
  for (; i < dim_; ++i) {
    double diff = double(pa[i]) - pb[i];
    sum += diff * diff;
  }
  return std::sqrt(sum);
}

double LInfMetric::Distance(const ObjectView& a, const ObjectView& b) const {
  assert(a.kind == ObjectKind::kVector && b.kind == ObjectKind::kVector);
  assert(a.dim == b.dim);
  const float* __restrict pa = a.vec;
  const float* __restrict pb = b.vec;
  double best = 0;
  for (uint32_t i = 0; i < a.dim; ++i) {
    best = std::max(best, std::fabs(double(pa[i]) - pb[i]));
  }
  return best;
}

double LInfMetric::BoundedDistance(const ObjectView& a, const ObjectView& b,
                                   double upper) const {
  assert(a.kind == ObjectKind::kVector && b.kind == ObjectKind::kVector);
  assert(a.dim == b.dim);
  const float* __restrict pa = a.vec;
  const float* __restrict pb = b.vec;
  // The running max is exact (no rounding accumulates), so the partial is
  // both the abandon test and the "> upper" return value.
  const uint32_t dim = a.dim;
  double best = 0;
  uint32_t i = 0;
  for (; i + kAbandonStride <= dim; i += kAbandonStride) {
    for (uint32_t j = i; j < i + kAbandonStride; ++j) {
      best = std::max(best, std::fabs(double(pa[j]) - pb[j]));
    }
    if (best > upper) return best;
  }
  for (; i < dim; ++i) {
    best = std::max(best, std::fabs(double(pa[i]) - pb[i]));
  }
  return best;
}

double EditDistanceMetric::Distance(const ObjectView& a,
                                    const ObjectView& b) const {
  assert(a.kind == ObjectKind::kString && b.kind == ObjectKind::kString);
  // Standard two-row Levenshtein DP.  The shorter string indexes the rows
  // to keep the working set minimal; distances here are small (<= 34 for
  // Words), so no banding is needed for correctness or speed.
  std::string_view s = a.AsString(), t = b.AsString();
  if (s.size() > t.size()) std::swap(s, t);
  const uint32_t m = static_cast<uint32_t>(s.size());
  const uint32_t n = static_cast<uint32_t>(t.size());
  if (m == 0) return n;

  // Thread-local scratch avoids per-call allocation on the hot path.
  thread_local std::vector<uint32_t> row;
  row.resize(m + 1);
  for (uint32_t i = 0; i <= m; ++i) row[i] = i;
  for (uint32_t j = 1; j <= n; ++j) {
    uint32_t prev = row[0];  // DP[j-1][0]
    row[0] = j;
    const char tj = t[j - 1];
    for (uint32_t i = 1; i <= m; ++i) {
      uint32_t cur = row[i];  // DP[j-1][i]
      uint32_t subst = prev + (s[i - 1] != tj);
      row[i] = std::min({row[i - 1] + 1, cur + 1, subst});
      prev = cur;
    }
  }
  return row[m];
}

double EditDistanceMetric::BoundedDistance(const ObjectView& a,
                                           const ObjectView& b,
                                           double upper) const {
  assert(a.kind == ObjectKind::kString && b.kind == ObjectKind::kString);
  std::string_view s = a.AsString(), t = b.AsString();
  if (s.size() > t.size()) std::swap(s, t);
  const uint32_t m = static_cast<uint32_t>(s.size());
  const uint32_t n = static_cast<uint32_t>(t.size());

  // Integer distances: d <= upper iff d <= floor(upper).  A band at least
  // as wide as the string leaves nothing to cut -- delegate to the plain
  // DP (also covers upper = +inf from an unfilled kNN heap).
  if (!(upper < n)) return Distance(a, b);
  const uint32_t kb =
      upper < 0 ? 0 : static_cast<uint32_t>(std::floor(upper));
  // Length-difference lower bound (also disposes of m == 0: that needs
  // n <= kb, impossible with kb = floor(upper) < n).
  if (n - m > kb) return n - m;

  // Ukkonen band: only cells with |i - j| <= kb can lie on an edit path
  // of cost <= kb, so each DP column j touches rows [j-kb, j+kb].  kCut
  // (= kb + 1) saturates every out-of-band or over-threshold value; when
  // the in-band column minimum reaches it, no path of cost <= kb remains
  // and the scan aborts with a "> upper" verdict.
  const uint32_t kCut = kb + 1;
  thread_local std::vector<uint32_t> row;
  row.resize(m + 1);
  for (uint32_t i = 0; i <= m; ++i) row[i] = i <= kb ? i : kCut;
  for (uint32_t j = 1; j <= n; ++j) {
    const uint32_t lo = j > kb ? j - kb : 1;
    const uint32_t hi = std::min(m, j + kb);
    uint32_t prev;  // DP[j-1][lo-1]
    if (lo == 1) {
      prev = row[0];
      row[0] = std::min(j, kCut);
    } else {
      prev = row[lo - 1];
      row[lo - 1] = kCut;  // cell (j, lo-1) leaves the band
    }
    uint32_t col_min = lo == 1 ? row[0] : kCut;
    const char tj = t[j - 1];
    for (uint32_t i = lo; i <= hi; ++i) {
      // DP[j-1][i] sits outside column j-1's band when i = j + kb.
      uint32_t cur = i >= j + kb ? kCut : row[i];
      uint32_t subst = prev + (s[i - 1] != tj);
      uint32_t val = std::min({row[i - 1] + 1, cur + 1, subst});
      row[i] = std::min(val, kCut);
      prev = cur;
      col_min = std::min(col_min, row[i]);
    }
    if (col_min >= kCut) return kCut;  // no path of cost <= kb survives
  }
  return row[m];  // <= kb means exact; kCut means "> upper"
}

}  // namespace pmi
