// Owning store of metric objects.
//
// A Dataset is an immutable-after-build arena of objects of one
// ObjectKind.  Indexes reference objects by ObjectId; the Dataset outlives
// every index built on it.  Serialization helpers define the on-"disk"
// record format used by the RAF object files of the external indexes.

#ifndef PMI_CORE_DATASET_H_
#define PMI_CORE_DATASET_H_

#include <cassert>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/object.h"

namespace pmi {

/// Arena-backed collection of objects of a single kind.
class Dataset {
 public:
  /// Creates an empty vector dataset of fixed dimensionality `dim`.
  static Dataset Vectors(uint32_t dim) {
    Dataset d;
    d.kind_ = ObjectKind::kVector;
    d.dim_ = dim;
    return d;
  }

  /// Creates an empty string dataset.
  static Dataset Strings() {
    Dataset d;
    d.kind_ = ObjectKind::kString;
    return d;
  }

  ObjectKind kind() const { return kind_; }

  /// Dimensionality; only meaningful for vector datasets.
  uint32_t dim() const { return dim_; }

  /// Number of objects.
  uint32_t size() const {
    return kind_ == ObjectKind::kVector
               ? static_cast<uint32_t>(dim_ == 0 ? 0 : vec_data_.size() / dim_)
               : static_cast<uint32_t>(str_offsets_.size());
  }

  bool empty() const { return size() == 0; }

  /// Appends a vector object; returns its id. `data` must hold dim() floats.
  ObjectId AddVector(const float* data) {
    assert(kind_ == ObjectKind::kVector);
    vec_data_.insert(vec_data_.end(), data, data + dim_);
    return size() - 1;
  }

  ObjectId AddVector(const std::vector<float>& data) {
    assert(data.size() == dim_);
    return AddVector(data.data());
  }

  /// Appends a string object; returns its id.
  ObjectId AddString(std::string_view s) {
    assert(kind_ == ObjectKind::kString);
    str_offsets_.push_back(static_cast<uint32_t>(str_data_.size()));
    str_lengths_.push_back(static_cast<uint32_t>(s.size()));
    str_data_.append(s);
    return size() - 1;
  }

  /// Copies an object (typically from another dataset); returns its id.
  ObjectId Add(const ObjectView& v) {
    if (kind_ == ObjectKind::kVector) {
      assert(v.kind == ObjectKind::kVector && v.dim == dim_);
      return AddVector(v.vec);
    }
    assert(v.kind == ObjectKind::kString);
    return AddString(v.AsString());
  }

  /// Non-owning view of object `id`.
  ObjectView view(ObjectId id) const {
    assert(id < size());
    if (kind_ == ObjectKind::kVector) {
      return ObjectView::FromVector(&vec_data_[size_t(id) * dim_], dim_);
    }
    return ObjectView::FromString(
        std::string_view(str_data_).substr(str_offsets_[id], str_lengths_[id]));
  }

  /// Serialized payload size of object `id` in bytes (RAF record payload).
  uint32_t payload_bytes(ObjectId id) const { return view(id).payload_bytes(); }

  /// Average serialized payload size; used for page-layout decisions.
  double avg_payload_bytes() const {
    if (empty()) return 0;
    if (kind_ == ObjectKind::kVector) return double(dim_) * sizeof(float);
    return double(str_data_.size()) / size();
  }

  /// Appends the raw payload of object `id` to `out`.
  void SerializeObject(ObjectId id, std::string* out) const {
    ObjectView v = view(id);
    if (kind_ == ObjectKind::kVector) {
      out->append(reinterpret_cast<const char*>(v.vec), v.payload_bytes());
    } else {
      out->append(v.str, v.len);
    }
  }

  /// Reinterprets `len` raw payload bytes (as produced by SerializeObject)
  /// as an object view.  `data` must be suitably aligned for floats when
  /// this is a vector dataset (page buffers guarantee this).
  ObjectView DeserializeObject(const char* data, uint32_t len) const {
    if (kind_ == ObjectKind::kVector) {
      assert(len == dim_ * sizeof(float));
      return ObjectView::FromVector(reinterpret_cast<const float*>(data), dim_);
    }
    return ObjectView::FromString(std::string_view(data, len));
  }

  /// Total payload bytes across all objects.
  size_t total_payload_bytes() const {
    return kind_ == ObjectKind::kVector ? vec_data_.size() * sizeof(float)
                                        : str_data_.size();
  }

 private:
  Dataset() = default;

  ObjectKind kind_ = ObjectKind::kVector;
  uint32_t dim_ = 0;
  std::vector<float> vec_data_;          // kVector: n * dim floats
  std::string str_data_;                 // kString: concatenated bytes
  std::vector<uint32_t> str_offsets_;    // kString: per-object offset
  std::vector<uint32_t> str_lengths_;    // kString: per-object length
};

}  // namespace pmi

#endif  // PMI_CORE_DATASET_H_
