#include "src/core/epoch.h"

#include <algorithm>

namespace pmi {

int EpochDomain::Pin() {
  uint64_t e = global_.load(std::memory_order_seq_cst);
  for (int i = 0; i < kSlots; ++i) {
    uint64_t expected = kIdle;
    if (!slots_[i].epoch.compare_exchange_strong(expected, e,
                                                 std::memory_order_seq_cst)) {
      continue;  // busy slot; probe the next one
    }
    // Claim and publication are one CAS, but the global epoch may have
    // advanced between our load and the claim -- republish until the
    // slot value and the global agree (see the header's protocol proof).
    uint64_t now;
    while ((now = global_.load(std::memory_order_seq_cst)) != e) {
      e = now;
      slots_[i].epoch.store(e, std::memory_order_seq_cst);
    }
    return i;
  }
  return kNoSlot;
}

void EpochDomain::Unpin(int slot) {
  slots_[slot].epoch.store(kIdle, std::memory_order_seq_cst);
}

void EpochDomain::Retire(std::shared_ptr<const void> obj) {
  std::lock_guard<std::mutex> lock(limbo_mu_);
  // Tag with the epoch under which readers may still have acquired the
  // object, then advance: readers pinning from here on observe the
  // incremented epoch and (by the seq_cst total order) the replacement
  // pointer the caller published before retiring.
  limbo_.emplace_back(global_.load(std::memory_order_relaxed),
                      std::move(obj));
  global_.fetch_add(1, std::memory_order_seq_cst);
  ReclaimLocked();
}

void EpochDomain::ReclaimLocked() {
  uint64_t min_pinned = UINT64_MAX;
  for (const Slot& s : slots_) {
    const uint64_t e = s.epoch.load(std::memory_order_seq_cst);
    if (e != kIdle) min_pinned = std::min(min_pinned, e);
  }
  limbo_.erase(std::remove_if(limbo_.begin(), limbo_.end(),
                              [min_pinned](const auto& entry) {
                                return entry.first < min_pinned;
                              }),
               limbo_.end());
}

bool EpochDomain::AnyPinned() const {
  for (const Slot& s : slots_) {
    if (s.epoch.load(std::memory_order_seq_cst) != kIdle) return true;
  }
  return false;
}

void EpochDomain::DrainAndReclaimAll() {
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(limbo_mu_);
      ReclaimLocked();
      if (limbo_.empty() && !AnyPinned()) return;
    }
    std::this_thread::yield();
  }
}

size_t EpochDomain::limbo_size() const {
  std::lock_guard<std::mutex> lock(limbo_mu_);
  return limbo_.size();
}

}  // namespace pmi
