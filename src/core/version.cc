#include "src/core/version.h"

namespace pmi {

VersionedTable::VersionedTable(std::shared_ptr<const TableVersion> initial)
    : owner_(std::move(initial)), current_(owner_.get()) {}

VersionedTable::~VersionedTable() {
  // Wait out every pinned reader BEFORE member destruction frees the
  // current version through owner_ (members die in reverse declaration
  // order, so domain_'s implicit drain would come too late).
  domain_.DrainAndReclaimAll();
}

VersionedTable::ReadPin VersionedTable::Pin() const {
  ReadPin pin;
  pin.owner_ = this;
  const int slot = domain_.Pin();
  if (slot == EpochDomain::kNoSlot) {
    // Slot exhaustion (> kSlots simultaneous readers): refcount instead.
    // Strictly slower, never incorrect.
    pin.fallback_ = Acquire();
    pin.version_ = pin.fallback_.get();
    return pin;
  }
  pin.slot_ = slot;
  // Safe to dereference from here until Unpin: a version can only reach
  // the limbo list after this load, and reclamation then waits out our
  // pinned epoch (see src/core/epoch.h).
  pin.version_ = current_.load(std::memory_order_seq_cst);
  return pin;
}

std::shared_ptr<const TableVersion> VersionedTable::Acquire() const {
  std::lock_guard<std::mutex> lock(owner_mu_);
  return owner_;
}

void VersionedTable::Publish(std::shared_ptr<const TableVersion> next) {
  const TableVersion* raw = next.get();
  std::shared_ptr<const TableVersion> old;
  {
    std::lock_guard<std::mutex> lock(owner_mu_);
    old = std::move(owner_);
    owner_ = std::move(next);
  }
  // Order matters: the new pointer must be visible before the old
  // version is tagged retired, so any reader the reclaimer cannot see
  // is guaranteed to load `raw` (the epoch protocol's publication
  // ordering requirement).
  current_.store(raw, std::memory_order_seq_cst);
  domain_.Retire(std::move(old));
}

}  // namespace pmi
