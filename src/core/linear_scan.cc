#include "src/core/linear_scan.h"

#include "src/core/knn_heap.h"

namespace pmi {

void LinearScan::BuildImpl() {
  live_.assign(data().size(), true);
}

void LinearScan::RangeImpl(const ObjectView& q, double r,
                           std::vector<ObjectId>* out) const {
  // Threshold-aware kernels: an object whose partial distance already
  // exceeds r abandons early; any reported value <= r is exact, so the
  // oracle results are unchanged (see Metric::BoundedDistance).
  DistanceComputer d = dist();
  for (ObjectId id = 0; id < live_.size(); ++id) {
    if (live_[id] && d.Bounded(q, data().view(id), r) <= r) {
      out->push_back(id);
    }
  }
}

void LinearScan::KnnImpl(const ObjectView& q, size_t k,
                         std::vector<Neighbor>* out) const {
  DistanceComputer d = dist();
  KnnHeap heap(k);
  for (ObjectId id = 0; id < live_.size(); ++id) {
    if (live_[id]) {
      heap.Push(id, d.Bounded(q, data().view(id), heap.radius()));
    }
  }
  heap.TakeSorted(out);
}

std::unique_ptr<MetricIndex> LinearScan::Clone() const {
  auto clone = std::make_unique<LinearScan>(options_);
  clone->CopyBaseFrom(*this);
  clone->live_ = live_;
  return clone;
}

void LinearScan::InsertImpl(ObjectId id) { live_[id] = true; }

void LinearScan::RemoveImpl(ObjectId id) { live_[id] = false; }

Status LinearScan::SaveImpl(ByteSink* out) const {
  out->PutU64(live_.size());
  for (bool b : live_) out->PutU8(b ? 1 : 0);
  return OkStatus();
}

Status LinearScan::LoadImpl(ByteSource* in) {
  uint64_t n = 0;
  PMI_RETURN_IF_ERROR(in->GetU64(&n));
  if (n != data().size()) {
    return DataLossError("LinearScan snapshot size does not match dataset");
  }
  live_.assign(n, false);
  for (uint64_t i = 0; i < n; ++i) {
    uint8_t b = 0;
    PMI_RETURN_IF_ERROR(in->GetU8(&b));
    live_[i] = b != 0;
  }
  return OkStatus();
}

}  // namespace pmi
