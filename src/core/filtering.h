// Pivot-based filtering and validation (Lemmas 1-4, Sections 2.3).
//
// These free functions are the entire pruning tool-box of the surveyed
// indexes.  Each maps one-to-one to a lemma in the paper; the unit tests
// verify soundness against brute-force distance evaluation.

#ifndef PMI_CORE_FILTERING_H_
#define PMI_CORE_FILTERING_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

namespace pmi {

/// Lemma 1 (pivot filtering), single-object form.  Returns true when
/// phi(o) lies outside the search region SR(q) = prod_i [d(q,pi)-r,
/// d(q,pi)+r], proving d(q,o) > r, so o can be pruned.
inline bool PrunedByPivots(const double* phi_o, const double* phi_q,
                           uint32_t l, double r) {
  for (uint32_t i = 0; i < l; ++i) {
    if (std::fabs(phi_o[i] - phi_q[i]) > r) return true;
  }
  return false;
}

/// Lemma 1 lower bound: max_i |d(q,pi) - d(o,pi)| <= d(q,o).  This is the
/// Linf distance in pivot space; used for best-first orderings.
inline double PivotLowerBound(const double* phi_o, const double* phi_q,
                              uint32_t l) {
  double best = 0;
  for (uint32_t i = 0; i < l; ++i) {
    best = std::max(best, std::fabs(phi_o[i] - phi_q[i]));
  }
  return best;
}

/// Triangle-inequality upper bound: d(q,o) <= min_i (d(q,pi) + d(o,pi)).
inline double PivotUpperBound(const double* phi_o, const double* phi_q,
                              uint32_t l) {
  double best = std::numeric_limits<double>::infinity();
  for (uint32_t i = 0; i < l; ++i) best = std::min(best, phi_o[i] + phi_q[i]);
  return best;
}

/// Lemma 1, region form.  `lo`/`hi` give the minimum bounding box (MBB) of
/// mapped vectors; returns true when the MBB misses SR(q) entirely, so the
/// whole region can be pruned.
inline bool MbbPrunedByPivots(const double* lo, const double* hi,
                              const double* phi_q, uint32_t l, double r) {
  for (uint32_t i = 0; i < l; ++i) {
    if (lo[i] > phi_q[i] + r || hi[i] < phi_q[i] - r) return true;
  }
  return false;
}

/// Lower bound of d(q,o) over all o whose phi(o) lies in the MBB:
/// max_i dist(phi_q[i], [lo_i, hi_i]).  Zero when phi(q) is inside.
inline double MbbLowerBound(const double* lo, const double* hi,
                            const double* phi_q, uint32_t l) {
  double best = 0;
  for (uint32_t i = 0; i < l; ++i) {
    if (phi_q[i] < lo[i]) {
      best = std::max(best, lo[i] - phi_q[i]);
    } else if (phi_q[i] > hi[i]) {
      best = std::max(best, phi_q[i] - hi[i]);
    }
  }
  return best;
}

/// Lemma 2 (range-pivot filtering).  A ball region with center pivot
/// distance `d_q_center` and covering radius `region_r` can be pruned when
/// d(q, center) > region_r + r.
inline bool PrunedByBall(double d_q_center, double region_r, double r) {
  return d_q_center > region_r + r;
}

/// Lemma 2 lower bound for a ball region: max(d(q,c) - R, 0).
inline double BallLowerBound(double d_q_center, double region_r) {
  return std::max(0.0, d_q_center - region_r);
}

/// Lemma 3 (double-pivot filtering).  The hyperplane partition of pivot pi
/// (objects nearer pi than pj) can be pruned when
/// d(q,pi) - d(q,pj) > 2r.
inline bool PrunedByHyperplane(double d_q_pi, double d_q_pj, double r) {
  return d_q_pi - d_q_pj > 2.0 * r;
}

/// Lemma 3 lower bound: every o with d(o,pi) <= d(o,pj) satisfies
/// d(q,o) >= (d(q,pi) - d(q,pj)) / 2.
inline double HyperplaneLowerBound(double d_q_pi, double d_q_pj) {
  return std::max(0.0, (d_q_pi - d_q_pj) / 2.0);
}

/// Lemma 4 (pivot validation).  o is guaranteed to satisfy d(q,o) <= r
/// when some pivot pi has d(o,pi) <= r - d(q,pi); the verification
/// distance computation can then be skipped.
inline bool ValidatedByPivot(double d_o_pi, double d_q_pi, double r) {
  return d_o_pi <= r - d_q_pi;
}

/// Lemma 4 over a full mapping: true when any pivot validates o.
inline bool ValidatedByPivots(const double* phi_o, const double* phi_q,
                              uint32_t l, double r) {
  for (uint32_t i = 0; i < l; ++i) {
    if (ValidatedByPivot(phi_o[i], phi_q[i], r)) return true;
  }
  return false;
}

}  // namespace pmi

#endif  // PMI_CORE_FILTERING_H_
