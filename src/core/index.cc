#include "src/core/index.h"

namespace pmi {

namespace {
// Every paged structure (B+-tree, R-tree, M-tree) uses an 8-byte node
// header; a page must additionally fit at least one entry, and the
// smallest fixed-size entries are tens of bytes.  64 is the smallest
// page size at which every storage structure can make progress.
constexpr uint32_t kMinPageSize = 64;
}  // namespace

Status ValidateOptions(const IndexOptions& options) {
  if (options.page_size == 0) {
    return InvalidArgumentError("page_size must be nonzero");
  }
  if (options.page_size < kMinPageSize) {
    return InvalidArgumentError(
        "page_size " + std::to_string(options.page_size) +
        " is smaller than a page header plus one entry (min " +
        std::to_string(kMinPageSize) + ")");
  }
  if (options.cache_bytes < options.page_size) {
    return InvalidArgumentError(
        "cache_bytes " + std::to_string(options.cache_bytes) +
        " cannot hold a single page of page_size " +
        std::to_string(options.page_size));
  }
  if (options.mvpt_arity < 2) {
    return InvalidArgumentError("mvpt_arity must be >= 2, got " +
                                std::to_string(options.mvpt_arity));
  }
  if (options.tree_leaf_capacity == 0) {
    return InvalidArgumentError("tree_leaf_capacity must be nonzero");
  }
  if (options.tree_fanout == 0) {
    // BKT/FQT size their distance buckets as max_distance / tree_fanout
    // and clamp bucket picks to tree_fanout - 1: zero underflows both.
    return InvalidArgumentError("tree_fanout must be nonzero");
  }
  return OkStatus();
}

}  // namespace pmi
