#include "src/core/index.h"

#include <cstdio>
#include <cstdlib>

namespace pmi {

namespace {
// Every paged structure (B+-tree, R-tree, M-tree) uses an 8-byte node
// header; a page must additionally fit at least one entry, and the
// smallest fixed-size entries are tens of bytes.  64 is the smallest
// page size at which every storage structure can make progress.
constexpr uint32_t kMinPageSize = 64;
}  // namespace

namespace {

// Converts per-query counter shards into per-query OpStats.  `seconds`
// stays 0: per-query wall time is not well defined once queries
// interleave block by block, and the bit-identical contract between
// execution modes could never hold for a timing anyway.
void ShardsToStats(const std::vector<PerfCounters>& shards,
                   std::vector<OpStats>* out) {
  out->resize(shards.size());
  for (size_t i = 0; i < shards.size(); ++i) {
    (*out)[i] = OpStats{};
    (*out)[i].dist_computations = shards[i].dist_computations;
    (*out)[i].page_reads = shards[i].page_reads;
    (*out)[i].page_writes = shards[i].page_writes;
    (*out)[i].pool_hits = shards[i].pool_hits;
    (*out)[i].physical_reads = shards[i].physical_reads;
    (*out)[i].physical_writes = shards[i].physical_writes;
  }
}

// Batch descriptors are parallel vectors; a length mismatch is a
// programmer error at the harness layer (the facade validates its
// requests before reaching here), but letting it through would read
// past the threshold vector in release builds -- abort with a message
// instead, matching MakeIndex's contract for unrecoverable misuse.
void CheckBatchSizes(size_t queries, size_t thresholds, const char* what) {
  if (queries != thresholds) {
    std::fprintf(stderr,
                 "MetricIndex batch: %zu queries but %zu %s -- the batch "
                 "descriptor vectors must be parallel\n",
                 queries, thresholds, what);
    std::abort();
  }
}

}  // namespace

OpStats MetricIndex::RangeQueryBatch(const std::vector<ObjectView>& queries,
                                     const std::vector<double>& radii,
                                     std::vector<std::vector<ObjectId>>* out,
                                     std::vector<OpStats>* per_query,
                                     BatchMode mode) const {
  CheckBatchSizes(queries.size(), radii.size(), "radii");
  const size_t n = queries.size();
  out->assign(n, {});
  PerfCounters before = counters_;
  Stopwatch watch;
  std::vector<PerfCounters> shards(n);
  bool handled = false;
  if (mode == BatchMode::kAuto && n > 0 && block_major_batches()) {
    handled = RangeBatchBlockImpl(queries, radii.data(), out, shards.data());
  }
  if (!handled) {
    RunQueryMajor(n, shards.data(), [&](size_t i) {
      RangeImpl(queries[i], radii[i], &(*out)[i]);
    });
  }
  for (const PerfCounters& s : shards) counters_ += s;
  if (per_query != nullptr) ShardsToStats(shards, per_query);
  return Finish(before, watch);
}

OpStats MetricIndex::KnnQueryBatch(const std::vector<ObjectView>& queries,
                                   const std::vector<size_t>& ks,
                                   std::vector<std::vector<Neighbor>>* out,
                                   std::vector<OpStats>* per_query,
                                   BatchMode mode) const {
  CheckBatchSizes(queries.size(), ks.size(), "neighbor counts");
  const size_t n = queries.size();
  out->assign(n, {});
  PerfCounters before = counters_;
  Stopwatch watch;
  std::vector<PerfCounters> shards(n);
  bool handled = false;
  if (mode == BatchMode::kAuto && n > 0 && block_major_batches()) {
    handled = KnnBatchBlockImpl(queries, ks.data(), out, shards.data());
  }
  if (!handled) {
    RunQueryMajor(n, shards.data(), [&](size_t i) {
      KnnImpl(queries[i], ks[i], &(*out)[i]);
    });
  }
  for (const PerfCounters& s : shards) counters_ += s;
  if (per_query != nullptr) ShardsToStats(shards, per_query);
  return Finish(before, watch);
}

namespace {

// Folds per-query shards into a batch total without ever touching the
// index's cumulative counters -- the whole point of the *Shared entry
// points (see index.h): a shared immutable snapshot must not be written
// by its readers.
OpStats FoldSharedBatch(const std::vector<PerfCounters>& shards,
                        const Stopwatch& watch,
                        std::vector<OpStats>* per_query) {
  PerfCounters total;
  for (const PerfCounters& s : shards) total += s;
  if (per_query != nullptr) ShardsToStats(shards, per_query);
  OpStats op;
  op.dist_computations = total.dist_computations;
  op.page_reads = total.page_reads;
  op.page_writes = total.page_writes;
  op.pool_hits = total.pool_hits;
  op.physical_reads = total.physical_reads;
  op.physical_writes = total.physical_writes;
  op.seconds = watch.Seconds();
  return op;
}

}  // namespace

OpStats MetricIndex::RangeQueryBatchShared(
    const std::vector<ObjectView>& queries, const std::vector<double>& radii,
    std::vector<std::vector<ObjectId>>* out, std::vector<OpStats>* per_query,
    BatchMode mode) const {
  CheckBatchSizes(queries.size(), radii.size(), "radii");
  const size_t n = queries.size();
  out->assign(n, {});
  Stopwatch watch;
  std::vector<PerfCounters> shards(n);
  bool handled = false;
  if (mode == BatchMode::kAuto && n > 0 && block_major_batches()) {
    handled = RangeBatchBlockImpl(queries, radii.data(), out, shards.data());
  }
  if (!handled) {
    // Inline query-major loop: the calling thread is one of many
    // concurrent readers, so fanning out over the shared pool here
    // would only make the readers contend on its region lock.  Every
    // *Impl counts through dist(), which honors the innermost
    // CounterScope -- counters_ is never written.
    for (size_t i = 0; i < n; ++i) {
      CounterScope scope(&shards[i]);
      RangeImpl(queries[i], radii[i], &(*out)[i]);
    }
  }
  return FoldSharedBatch(shards, watch, per_query);
}

OpStats MetricIndex::KnnQueryBatchShared(const std::vector<ObjectView>& queries,
                                         const std::vector<size_t>& ks,
                                         std::vector<std::vector<Neighbor>>* out,
                                         std::vector<OpStats>* per_query,
                                         BatchMode mode) const {
  CheckBatchSizes(queries.size(), ks.size(), "neighbor counts");
  const size_t n = queries.size();
  out->assign(n, {});
  Stopwatch watch;
  std::vector<PerfCounters> shards(n);
  bool handled = false;
  if (mode == BatchMode::kAuto && n > 0 && block_major_batches()) {
    handled = KnnBatchBlockImpl(queries, ks.data(), out, shards.data());
  }
  if (!handled) {
    for (size_t i = 0; i < n; ++i) {  // see RangeQueryBatchShared
      CounterScope scope(&shards[i]);
      KnnImpl(queries[i], ks[i], &(*out)[i]);
    }
  }
  return FoldSharedBatch(shards, watch, per_query);
}

Status ValidateOptions(const IndexOptions& options) {
  if (options.page_size == 0) {
    return InvalidArgumentError("page_size must be nonzero");
  }
  if (options.page_size < kMinPageSize) {
    return InvalidArgumentError(
        "page_size " + std::to_string(options.page_size) +
        " is smaller than a page header plus one entry (min " +
        std::to_string(kMinPageSize) + ")");
  }
  if (options.cache_bytes < options.page_size) {
    return InvalidArgumentError(
        "cache_bytes " + std::to_string(options.cache_bytes) +
        " cannot hold a single page of page_size " +
        std::to_string(options.page_size));
  }
  if (options.mvpt_arity < 2) {
    return InvalidArgumentError("mvpt_arity must be >= 2, got " +
                                std::to_string(options.mvpt_arity));
  }
  if (options.tree_leaf_capacity == 0) {
    return InvalidArgumentError("tree_leaf_capacity must be nonzero");
  }
  if (options.tree_fanout == 0) {
    // BKT/FQT size their distance buckets as max_distance / tree_fanout
    // and clamp bucket picks to tree_fanout - 1: zero underflows both.
    return InvalidArgumentError("tree_fanout must be nonzero");
  }
  return OkStatus();
}

}  // namespace pmi
