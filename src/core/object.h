// Type-erased metric objects.
//
// The paper's metric-space model (Section 2.1) is agnostic to the payload
// type: the evaluated datasets contain 2-d geographic points (LA), words
// (Words), 282-d image features (Color), and 20-d integer vectors
// (Synthetic).  ObjectView is a cheap non-owning view covering both payload
// families so every index and metric operates on one object representation.

#ifndef PMI_CORE_OBJECT_H_
#define PMI_CORE_OBJECT_H_

#include <cstdint>
#include <cstring>
#include <string_view>

namespace pmi {

/// Dense identifier of an object within its Dataset.
using ObjectId = uint32_t;

/// Sentinel for "no object".
inline constexpr ObjectId kInvalidObjectId = UINT32_MAX;

/// Payload family of a Dataset.
enum class ObjectKind : uint8_t {
  kVector,  ///< fixed-dimension float vector (LA, Color, Synthetic)
  kString,  ///< variable-length byte string (Words)
};

/// Non-owning view of a single metric object.
///
/// Exactly one of the (vec, dim) / (str, len) pairs is meaningful,
/// selected by `kind`.  Views are trivially copyable and valid for the
/// lifetime of the owning Dataset (or page buffer for objects
/// materialized from disk).
struct ObjectView {
  ObjectKind kind = ObjectKind::kVector;
  const float* vec = nullptr;
  uint32_t dim = 0;
  const char* str = nullptr;
  uint32_t len = 0;

  static ObjectView FromVector(const float* data, uint32_t dim) {
    ObjectView v;
    v.kind = ObjectKind::kVector;
    v.vec = data;
    v.dim = dim;
    return v;
  }

  static ObjectView FromString(std::string_view s) {
    ObjectView v;
    v.kind = ObjectKind::kString;
    v.str = s.data();
    v.len = static_cast<uint32_t>(s.size());
    return v;
  }

  std::string_view AsString() const { return std::string_view(str, len); }

  /// First byte of the payload, whichever family it is -- the address
  /// the batched verification paths prefetch before computing distances.
  const void* payload_ptr() const {
    return kind == ObjectKind::kVector ? static_cast<const void*>(vec)
                                       : static_cast<const void*>(str);
  }

  /// Number of payload bytes when serialized (see Dataset::SerializeObject).
  uint32_t payload_bytes() const {
    return kind == ObjectKind::kVector
               ? dim * static_cast<uint32_t>(sizeof(float))
               : len;
  }

  /// Deep equality of payloads (not identity).
  bool PayloadEquals(const ObjectView& o) const {
    if (kind != o.kind) return false;
    if (kind == ObjectKind::kVector) {
      return dim == o.dim &&
             std::memcmp(vec, o.vec, dim * sizeof(float)) == 0;
    }
    return len == o.len && std::memcmp(str, o.str, len) == 0;
  }
};

}  // namespace pmi

#endif  // PMI_CORE_OBJECT_H_
