// Deterministic random number utilities.
//
// All dataset generation, pivot selection, and query sampling in this
// repository is seeded so experiments are exactly reproducible run-to-run.

#ifndef PMI_CORE_RNG_H_
#define PMI_CORE_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace pmi {

/// Project-wide RNG. mt19937_64 everywhere; never seeded from entropy.
using Rng = std::mt19937_64;

/// Samples `count` distinct values from [0, n).  If count >= n, returns
/// the full identity permutation prefix of length n.
inline std::vector<uint32_t> SampleDistinct(uint32_t n, uint32_t count,
                                            Rng& rng) {
  if (count >= n) {
    std::vector<uint32_t> all(n);
    for (uint32_t i = 0; i < n; ++i) all[i] = i;
    return all;
  }
  // Floyd's algorithm for small samples, partial shuffle otherwise.
  if (count < n / 16) {
    std::vector<uint32_t> out;
    out.reserve(count);
    std::vector<bool> taken;  // lazily sized only when needed
    taken.resize(n, false);
    for (uint32_t j = n - count; j < n; ++j) {
      uint32_t t = std::uniform_int_distribution<uint32_t>(0, j)(rng);
      if (taken[t]) t = j;
      taken[t] = true;
      out.push_back(t);
    }
    return out;
  }
  std::vector<uint32_t> all(n);
  for (uint32_t i = 0; i < n; ++i) all[i] = i;
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t j = std::uniform_int_distribution<uint32_t>(i, n - 1)(rng);
    std::swap(all[i], all[j]);
  }
  all.resize(count);
  return all;
}

}  // namespace pmi

#endif  // PMI_CORE_RNG_H_
