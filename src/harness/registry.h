// Index registry: one factory per surveyed index, shared by the
// conformance tests and every benchmark so indexes are always constructed
// the same way.

#ifndef PMI_HARNESS_REGISTRY_H_
#define PMI_HARNESS_REGISTRY_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/core/index.h"

namespace pmi {

/// Construction recipe and applicability flags for one index.
struct IndexSpec {
  std::string name;
  /// True when the index only supports discrete distance functions
  /// (BKT, FQT; Table 1).
  bool discrete_only = false;
  /// True for category-3 (disk) indexes plus CPT's disk component.
  bool uses_disk = false;
  /// Minimum number of pivots required (M-index* needs >= 2 for
  /// hyperplane partitioning; Fig. 18 omits it at |P| = 1).
  uint32_t min_pivots = 1;
  /// True if the index ignores the shared pivot set's identity (EPT,
  /// EPT*, BKT pick their own pivots; only |P| is honored).
  bool own_pivots = false;
  std::function<std::unique_ptr<MetricIndex>(const IndexOptions&)> make;
};

/// All indexes of the survey, in the paper's presentation order:
/// LAESA, EPT, EPT*, CPT, BKT, FQT, VPT, MVPT, PM-tree, Omni-seq,
/// OmniB+-tree, OmniR-tree, M-index, M-index*, SPB-tree (+ AESA).
const std::vector<IndexSpec>& AllIndexSpecs();

/// The nine indexes of the paper's query-performance figures
/// (Figs. 16-18): EPT*, CPT, BKT, FQT, MVPT, SPB-tree, M-index*,
/// PM-tree, OmniR-tree.
const std::vector<IndexSpec>& FigureIndexSpecs();

/// Factory by display name; aborts on unknown names.
std::unique_ptr<MetricIndex> MakeIndex(const std::string& name,
                                       const IndexOptions& options = {});

/// Spec by display name, or nullptr.
const IndexSpec* FindIndexSpec(const std::string& name);

}  // namespace pmi

#endif  // PMI_HARNESS_REGISTRY_H_
