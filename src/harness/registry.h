// Index registry: one factory per surveyed index, shared by the
// conformance tests and every benchmark so indexes are always constructed
// the same way.

#ifndef PMI_HARNESS_REGISTRY_H_
#define PMI_HARNESS_REGISTRY_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/core/index.h"

namespace pmi {

/// Construction recipe and applicability flags for one index.
struct IndexSpec {
  std::string name;
  /// True when the index only supports discrete distance functions
  /// (BKT, FQT; Table 1).
  bool discrete_only = false;
  /// True for category-3 (disk) indexes plus CPT's disk component.
  bool uses_disk = false;
  /// Minimum number of pivots required (M-index* needs >= 2 for
  /// hyperplane partitioning; Fig. 18 omits it at |P| = 1).
  uint32_t min_pivots = 1;
  /// True if the index ignores the shared pivot set's identity (EPT,
  /// EPT*, BKT pick their own pivots; only |P| is honored).
  bool own_pivots = false;
  std::function<std::unique_ptr<MetricIndex>(const IndexOptions&)> make;
};

/// All indexes of the survey, in the paper's presentation order:
/// LAESA, EPT, EPT*, CPT, BKT, FQT, VPT, MVPT, PM-tree, Omni-seq,
/// OmniB+-tree, OmniR-tree, M-index, M-index*, SPB-tree (+ AESA).
const std::vector<IndexSpec>& AllIndexSpecs();

/// The nine indexes of the paper's query-performance figures
/// (Figs. 16-18): EPT*, CPT, BKT, FQT, MVPT, SPB-tree, M-index*,
/// PM-tree, OmniR-tree.
const std::vector<IndexSpec>& FigureIndexSpecs();

/// Recoverable factory by display name: kNotFound for unknown names,
/// kInvalidArgument when `options` fail ValidateOptions or when
/// `pivot_count` (if given) violates the index's min_pivots.  This is the
/// constructor the facade layer uses; pass kAnyPivotCount to skip the
/// pivot check when the pivot set is not known yet.
inline constexpr uint32_t kAnyPivotCount = UINT32_MAX;
StatusOr<std::unique_ptr<MetricIndex>> TryMakeIndex(
    const std::string& name, const IndexOptions& options = {},
    uint32_t pivot_count = kAnyPivotCount);

/// Factory by display name; aborts on unknown names (the harness/bench
/// contract).  Routed through TryMakeIndex.
std::unique_ptr<MetricIndex> MakeIndex(const std::string& name,
                                       const IndexOptions& options = {});

/// Spec by display name, or nullptr.  Covers every spec of AllIndexSpecs
/// plus "LinearScan" (the brute-force baseline -- constructible by name
/// for the facade, but deliberately absent from the survey spec lists so
/// the paper-reproduction harness is unchanged).
const IndexSpec* FindIndexSpec(const std::string& name);

}  // namespace pmi

#endif  // PMI_HARNESS_REGISTRY_H_
