#include "src/harness/workload.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "src/core/pivot_selection.h"
#include "src/core/rng.h"

namespace pmi {

// atol would silently truncate "10x" to 10 and wrap out-of-range
// values; parse strictly instead.
uint32_t EnvU32(const char* name, uint32_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  errno = 0;
  char* end = nullptr;
  const unsigned long parsed = std::strtoul(v, &end, 10);
  if (errno != 0 || end == v || *end != '\0' ||
      parsed > std::numeric_limits<uint32_t>::max()) {
    std::fprintf(stderr,
                 "pmi: ignoring %s='%s' (want a non-negative 32-bit "
                 "integer); using %u\n",
                 name, v, fallback);
    return fallback;
  }
  return parsed > 0 ? static_cast<uint32_t>(parsed) : fallback;
}

BenchConfig BenchConfig::FromEnv() {
  BenchConfig c;
  c.scale_pct = EnvU32("PMI_SCALE", 100);
  c.queries = EnvU32("PMI_QUERIES", 10);
  c.quick = EnvU32("PMI_QUICK", 0) != 0;
  if (c.quick) {
    c.scale_pct = std::max(1u, c.scale_pct / 10);
    c.queries = std::min(c.queries, 5u);
  }
  return c;
}

uint32_t DefaultCardinality(BenchDatasetId id) {
  // ~2% of the paper's cardinalities: the full suite then reproduces in
  // minutes on a laptop.  PMI_SCALE=1000 runs ~20% of paper scale.
  switch (id) {
    case BenchDatasetId::kLa: return 20000;        // paper: 1,073,727
    case BenchDatasetId::kWords: return 15000;     // paper: 611,756
    case BenchDatasetId::kColor: return 5000;      // paper: 1,000,000
    case BenchDatasetId::kSynthetic: return 12000; // paper: 1,000,000
  }
  return 10000;
}

std::vector<BenchDatasetId> AllBenchDatasets() {
  return {BenchDatasetId::kLa, BenchDatasetId::kWords, BenchDatasetId::kColor,
          BenchDatasetId::kSynthetic};
}

Workload MakeWorkload(BenchDatasetId id, const BenchConfig& config,
                      uint32_t pivot_count) {
  uint32_t n = static_cast<uint32_t>(
      uint64_t(DefaultCardinality(id)) * config.scale_pct / 100);
  n = std::max(n, 500u);
  Workload w{.bd = MakeBenchDataset(id, n),
             .distribution = {},
             .pivots = {},
             .query_ids = {}};
  w.distribution = EstimateDistribution(w.bd.data, *w.bd.metric, 20000, 7);
  PivotSelectionOptions po;
  po.sample_size = std::min(n, 2000u);
  w.pivots = SelectSharedPivots(w.bd.data, *w.bd.metric, pivot_count, po);
  // Distinct query ids: rng() % n can repeat, and a duplicated query
  // would double-weight its cost in the averaged measurements.  (When
  // config.queries >= n, every object becomes a query exactly once.)
  Rng rng(0x9dcba);
  std::vector<uint32_t> qids = SampleDistinct(n, config.queries, rng);
  w.query_ids.assign(qids.begin(), qids.end());
  return w;
}

uint32_t PageSizeFor(const std::string& index_name, BenchDatasetId dataset) {
  bool big_objects = dataset == BenchDatasetId::kColor ||
                     dataset == BenchDatasetId::kSynthetic;
  bool stores_objects_in_tree = index_name == "CPT" || index_name == "PM-tree";
  return big_objects && stores_objects_in_tree ? 40960 : 4096;
}

IndexOptions OptionsFor(const std::string& index_name,
                        BenchDatasetId dataset) {
  IndexOptions o;
  o.page_size = PageSizeFor(index_name, dataset);
  o.seed = 42;
  return o;
}

void QueryCost::Accumulate(const OpStats& s, size_t result_count) {
  compdists += double(s.dist_computations);
  page_accesses += double(s.page_accesses());
  cpu_ms += s.seconds * 1000.0;
  results += double(result_count);
}

void QueryCost::FinishAverage(size_t runs) {
  if (runs == 0) return;
  compdists /= double(runs);
  page_accesses /= double(runs);
  cpu_ms /= double(runs);
  results /= double(runs);
}

QueryCost RunMrq(const MetricIndex& index, const Workload& w, double r) {
  QueryCost cost;
  std::vector<ObjectId> out;
  for (ObjectId qid : w.query_ids) {
    OpStats s = index.RangeQuery(w.data().view(qid), r, &out);
    cost.Accumulate(s, out.size());
  }
  cost.FinishAverage(w.query_ids.size());
  return cost;
}

QueryCost RunKnn(const MetricIndex& index, const Workload& w, uint32_t k) {
  QueryCost cost;
  std::vector<Neighbor> out;
  for (ObjectId qid : w.query_ids) {
    OpStats s = index.KnnQuery(w.data().view(qid), k, &out);
    cost.Accumulate(s, out.size());
  }
  cost.FinishAverage(w.query_ids.size());
  return cost;
}

}  // namespace pmi
