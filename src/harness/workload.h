// Benchmark workloads: scaled datasets, calibrated radii, query samples.
//
// The paper runs 1M-object datasets on a Xeon server; this repository
// defaults to ~2-6% of that so the full suite reproduces on a laptop in
// minutes.  Scale with PMI_SCALE (percent, default 100 = our defaults;
// 1600 approximates paper cardinalities), PMI_QUERIES (queries averaged
// per measurement, paper uses 100, default here 20), PMI_QUICK=1 (CI
// smoke mode).  Radii are specified as selectivities, matching the
// paper's definition of r (Section 6.1).

#ifndef PMI_HARNESS_WORKLOAD_H_
#define PMI_HARNESS_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/index.h"
#include "src/core/pivots.h"
#include "src/data/distribution.h"
#include "src/data/generators.h"

namespace pmi {

/// Strict environment uint parse shared by the harness and the bench
/// binaries: the whole value must be one base-10 integer that fits in
/// uint32.  Malformed or out-of-range values warn to stderr and fall
/// back; a parsed 0 falls back silently (every knob is "positive or
/// unset").
uint32_t EnvU32(const char* name, uint32_t fallback);

/// Environment-controlled benchmark configuration.  (The parallel
/// engine's thread count is not part of this struct: the global
/// ThreadPool reads PMI_THREADS itself, and bench_throughput's --threads
/// flag drives ThreadPool::SetGlobalThreads directly.)
struct BenchConfig {
  uint32_t scale_pct = 100;
  uint32_t queries = 20;
  bool quick = false;

  static BenchConfig FromEnv();
};

/// One ready-to-run dataset: data, metric, stats, shared pivots, queries.
struct Workload {
  BenchDataset bd;
  DistanceDistribution distribution;
  PivotSet pivots;              // |P| = 5 default (HFI-selected)
  std::vector<ObjectId> query_ids;

  const Dataset& data() const { return bd.data; }
  const Metric& metric() const { return *bd.metric; }
  /// MRQ radius with expected selectivity `fraction` (e.g. 0.16).
  double Radius(double fraction) const {
    return distribution.RadiusForSelectivity(fraction);
  }
};

/// Default (unscaled) benchmark cardinality per dataset.
uint32_t DefaultCardinality(BenchDatasetId id);

/// Builds the workload for `id` at the configured scale with `pivot_count`
/// shared pivots.
Workload MakeWorkload(BenchDatasetId id, const BenchConfig& config,
                      uint32_t pivot_count = 5);

/// The four benchmark datasets in the paper's column order.
std::vector<BenchDatasetId> AllBenchDatasets();

/// Page size the paper assigns this index on this dataset: 40 KB for CPT
/// and PM-tree on the high-dimensional Color/Synthetic, 4 KB otherwise
/// (Section 6.1).
uint32_t PageSizeFor(const std::string& index_name, BenchDatasetId dataset);

/// Fully configured IndexOptions for an index/dataset pair.
IndexOptions OptionsFor(const std::string& index_name,
                        BenchDatasetId dataset);

/// Mean per-query costs over the workload's query set.
struct QueryCost {
  double compdists = 0;
  double page_accesses = 0;
  double cpu_ms = 0;
  double results = 0;  // mean result-set size (sanity signal)

  void Accumulate(const OpStats& s, size_t result_count);
  void FinishAverage(size_t runs);
};

/// Runs MRQ(q, r) over all workload queries and averages the costs.
QueryCost RunMrq(const MetricIndex& index, const Workload& w, double r);

/// Runs MkNNQ(q, k) over all workload queries and averages the costs.
QueryCost RunKnn(const MetricIndex& index, const Workload& w, uint32_t k);

}  // namespace pmi

#endif  // PMI_HARNESS_WORKLOAD_H_
