#include "src/harness/registry.h"

#include <cassert>
#include <cstdlib>

#include "src/core/linear_scan.h"
#include "src/external/ept_disk.h"
#include "src/external/m_index.h"
#include "src/external/omni.h"
#include "src/external/pm_tree.h"
#include "src/external/spb_tree.h"
#include "src/tables/aesa.h"
#include "src/tables/cpt.h"
#include "src/tables/ept.h"
#include "src/tables/laesa.h"
#include "src/trees/bkt.h"
#include "src/trees/fqa.h"
#include "src/trees/fqt.h"
#include "src/trees/mvpt.h"

namespace pmi {
namespace {

std::vector<IndexSpec> BuildSpecs() {
  std::vector<IndexSpec> specs;
  specs.push_back({"AESA", false, false, 1, true,
                   [](const IndexOptions& o) {
                     return std::make_unique<Aesa>(o);
                   }});
  specs.push_back({"LAESA", false, false, 1, false,
                   [](const IndexOptions& o) {
                     return std::make_unique<Laesa>(o);
                   }});
  specs.push_back({"EPT", false, false, 1, true,
                   [](const IndexOptions& o) {
                     return std::make_unique<Ept>(Ept::Variant::kClassic, o);
                   }});
  specs.push_back({"EPT*", false, false, 1, true,
                   [](const IndexOptions& o) {
                     return std::make_unique<Ept>(Ept::Variant::kStar, o);
                   }});
  specs.push_back({"CPT", false, true, 1, false,
                   [](const IndexOptions& o) {
                     return std::make_unique<Cpt>(o);
                   }});
  specs.push_back({"BKT", true, false, 1, true,
                   [](const IndexOptions& o) {
                     return std::make_unique<Bkt>(o);
                   }});
  specs.push_back({"FQT", true, false, 1, false,
                   [](const IndexOptions& o) {
                     return std::make_unique<Fqt>(o);
                   }});
  specs.push_back({"FQA", true, false, 1, false,
                   [](const IndexOptions& o) {
                     return std::make_unique<Fqa>(o);
                   }});
  specs.push_back({"VPT", false, false, 1, false,
                   [](const IndexOptions& o) {
                     return std::make_unique<Mvpt>(o, /*arity_override=*/2);
                   }});
  specs.push_back({"MVPT", false, false, 1, false,
                   [](const IndexOptions& o) {
                     return std::make_unique<Mvpt>(o);
                   }});
  specs.push_back({"PM-tree", false, true, 1, false,
                   [](const IndexOptions& o) {
                     return std::make_unique<PmTree>(o);
                   }});
  specs.push_back({"OmniSeq", false, true, 1, false,
                   [](const IndexOptions& o) {
                     return std::make_unique<OmniSequential>(o);
                   }});
  specs.push_back({"OmniB+tree", false, true, 1, false,
                   [](const IndexOptions& o) {
                     return std::make_unique<OmniBTree>(o);
                   }});
  specs.push_back({"OmniR-tree", false, true, 1, false,
                   [](const IndexOptions& o) {
                     return std::make_unique<OmniRTree>(o);
                   }});
  specs.push_back({"M-index", false, true, 2, false,
                   [](const IndexOptions& o) {
                     return std::make_unique<MIndex>(MIndex::Variant::kBasic,
                                                     o);
                   }});
  specs.push_back({"M-index*", false, true, 2, false,
                   [](const IndexOptions& o) {
                     return std::make_unique<MIndex>(MIndex::Variant::kStar,
                                                     o);
                   }});
  specs.push_back({"SPB-tree", false, true, 1, false,
                   [](const IndexOptions& o) {
                     return std::make_unique<SpbTree>(o);
                   }});
  // Section 7 future-work extension: EPT* as a disk-based index.
  specs.push_back({"EPT*-disk", false, true, 1, true,
                   [](const IndexOptions& o) {
                     return std::make_unique<EptDisk>(o);
                   }});
  return specs;
}

}  // namespace

const std::vector<IndexSpec>& AllIndexSpecs() {
  static const std::vector<IndexSpec>* specs =
      new std::vector<IndexSpec>(BuildSpecs());
  return *specs;
}

const std::vector<IndexSpec>& FigureIndexSpecs() {
  static const std::vector<IndexSpec>* specs = [] {
    auto* out = new std::vector<IndexSpec>();
    for (const char* name : {"EPT*", "CPT", "BKT", "FQT", "MVPT", "SPB-tree",
                             "M-index*", "PM-tree", "OmniR-tree"}) {
      const IndexSpec* s = FindIndexSpec(name);
      if (s != nullptr) out->push_back(*s);
    }
    return out;
  }();
  return *specs;
}

const IndexSpec* FindIndexSpec(const std::string& name) {
  for (const IndexSpec& s : AllIndexSpecs()) {
    if (s.name == name) return &s;
  }
  // Baseline specs constructible by name but excluded from the survey
  // lists (AllIndexSpecs drives the equal-footing experiments; adding
  // LinearScan there would perturb every figure and table).
  static const std::vector<IndexSpec>* extras = new std::vector<IndexSpec>{
      {"LinearScan", false, false, 0, true,
       [](const IndexOptions& o) { return std::make_unique<LinearScan>(o); }},
  };
  for (const IndexSpec& s : *extras) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

StatusOr<std::unique_ptr<MetricIndex>> TryMakeIndex(
    const std::string& name, const IndexOptions& options,
    uint32_t pivot_count) {
  const IndexSpec* spec = FindIndexSpec(name);
  if (spec == nullptr) {
    return NotFoundError("unknown index name: \"" + name + "\"");
  }
  PMI_RETURN_IF_ERROR(ValidateOptions(options));
  if (pivot_count != kAnyPivotCount && pivot_count < spec->min_pivots) {
    return InvalidArgumentError(
        name + " requires at least " + std::to_string(spec->min_pivots) +
        " pivots, got " + std::to_string(pivot_count));
  }
  return spec->make(options);
}

std::unique_ptr<MetricIndex> MakeIndex(const std::string& name,
                                       const IndexOptions& options) {
  auto index = TryMakeIndex(name, options);
  if (!index.ok()) {
    std::fprintf(stderr, "MakeIndex(%s): %s\n", name.c_str(),
                 index.status().ToString().c_str());
    std::abort();
  }
  return std::move(index).value();
}

}  // namespace pmi
