#include "src/harness/table_printer.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

namespace pmi {

TablePrinter::TablePrinter(std::vector<std::string> header) {
  rows_.push_back(std::move(header));
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  assert(cells.size() == rows_[0].size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print() const {
  std::vector<size_t> width(rows_[0].size(), 0);
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  for (size_t r = 0; r < rows_.size(); ++r) {
    std::string line;
    for (size_t c = 0; c < rows_[r].size(); ++c) {
      std::string cell = rows_[r][c];
      cell.resize(width[c], ' ');
      line += cell;
      if (c + 1 < rows_[r].size()) line += "  ";
    }
    std::printf("%s\n", line.c_str());
    if (r == 0) {
      std::string sep(line.size(), '-');
      std::printf("%s\n", sep.c_str());
    }
  }
}

std::string FormatCount(double v) {
  char buf[64];
  if (v < 0) return "-";
  if (v < 100000) {
    if (v == std::floor(v)) {
      std::snprintf(buf, sizeof(buf), "%.0f", v);
    } else {
      std::snprintf(buf, sizeof(buf), "%.1f", v);
    }
  } else {
    int exp = static_cast<int>(std::floor(std::log10(v)));
    std::snprintf(buf, sizeof(buf), "%.2fe%d", v / std::pow(10, exp), exp);
  }
  return buf;
}

std::string FormatMs(double ms) {
  char buf[64];
  if (ms < 0.01) {
    std::snprintf(buf, sizeof(buf), "%.4f", ms);
  } else if (ms < 10) {
    std::snprintf(buf, sizeof(buf), "%.3f", ms);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f", ms);
  }
  return buf;
}

std::string FormatBytes(size_t bytes) {
  char buf[64];
  if (bytes >= (size_t(1) << 20)) {
    std::snprintf(buf, sizeof(buf), "%.1f MB", double(bytes) / (1 << 20));
  } else if (bytes >= 1024) {
    std::snprintf(buf, sizeof(buf), "%.1f KB", double(bytes) / 1024);
  } else {
    std::snprintf(buf, sizeof(buf), "%zu B", bytes);
  }
  return buf;
}

std::string FormatF(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

void PrintBanner(const std::string& title) {
  std::printf("\n== %s ==\n", title.c_str());
}

void PrintRanking(const std::string& metric,
                  std::vector<std::pair<std::string, double>> scores) {
  std::sort(scores.begin(), scores.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
  std::string line = metric + ": ";
  static const char* kOrdinals[] = {"1st", "2nd", "3rd", "4th", "5th",
                                    "6th", "7th", "8th", "9th", "10th",
                                    "11th", "12th", "13th", "14th", "15th"};
  for (size_t i = 0; i < scores.size() && i < std::size(kOrdinals); ++i) {
    line += std::string(kOrdinals[i]) + ":" + scores[i].first + "  ";
  }
  std::printf("%s\n", line.c_str());
}

}  // namespace pmi
