// Fixed-width console tables for the benchmark binaries.

#ifndef PMI_HARNESS_TABLE_PRINTER_H_
#define PMI_HARNESS_TABLE_PRINTER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace pmi {

/// Column-aligned table with a header row; prints to stdout.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Adds one row; must match the header arity.
  void AddRow(std::vector<std::string> cells);
  void Print() const;

 private:
  std::vector<std::vector<std::string>> rows_;
};

/// 1234567 -> "1.23e6"-style compact scientific for big counts, plain for
/// small ones.
std::string FormatCount(double v);

/// Milliseconds with sensible precision.
std::string FormatMs(double ms);

/// "12.3 KB" / "4.5 MB" style.
std::string FormatBytes(size_t bytes);

/// Fixed decimals.
std::string FormatF(double v, int decimals = 2);

/// Prints a "== title ==" section banner.
void PrintBanner(const std::string& title);

/// Prints ranking lines ("1st: X  2nd: Y ...") for a metric, ascending.
void PrintRanking(const std::string& metric,
                  std::vector<std::pair<std::string, double>> scores);

}  // namespace pmi

#endif  // PMI_HARNESS_TABLE_PRINTER_H_
