#include "src/api/snapshot.h"

#include <cstdio>
#include <cstring>
#include <fstream>

#include "src/core/serialize.h"

namespace pmi {

namespace {
constexpr size_t kEnvelopeHead = 8 + 4 + 8;  // magic + version + length
constexpr size_t kEnvelopeTail = 8;          // checksum
}  // namespace

Status WriteSnapshotFile(const std::string& path,
                         const std::string& payload) {
  ByteSink head;
  head.Raw(kSnapshotMagic, sizeof(kSnapshotMagic));
  head.PutU32(kSnapshotFormatVersion);
  head.PutU64(payload.size());

  // Write-then-rename: a crash or full disk mid-write must never destroy
  // an existing good snapshot at `path`.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return NotFoundError("cannot open \"" + tmp + "\" for writing");
    }
    out.write(head.bytes().data(), head.bytes().size());
    out.write(payload.data(), payload.size());
    ByteSink tail;
    tail.PutU64(Fnv1a64(payload));
    out.write(tail.bytes().data(), tail.bytes().size());
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      return DataLossError("write to \"" + tmp + "\" failed");
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return DataLossError("cannot move snapshot into place at \"" + path +
                         "\"");
  }
  return OkStatus();
}

StatusOr<std::string> ReadSnapshotFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return NotFoundError("cannot open snapshot \"" + path + "\"");
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (in.bad()) {
    return DataLossError("read of snapshot \"" + path + "\" failed");
  }
  if (bytes.size() < kEnvelopeHead + kEnvelopeTail) {
    return DataLossError("snapshot \"" + path + "\" is too short to be valid");
  }
  if (std::memcmp(bytes.data(), kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
    return InvalidArgumentError("\"" + path + "\" is not a MetricDB snapshot");
  }
  ByteSource head(std::string_view(bytes).substr(sizeof(kSnapshotMagic)));
  uint32_t version = 0;
  uint64_t length = 0;
  PMI_RETURN_IF_ERROR(head.GetU32(&version));
  PMI_RETURN_IF_ERROR(head.GetU64(&length));
  if (version != kSnapshotFormatVersion) {
    return FailedPreconditionError(
        "snapshot format version " + std::to_string(version) +
        " is not supported (this build reads version " +
        std::to_string(kSnapshotFormatVersion) + ")");
  }
  if (length != bytes.size() - kEnvelopeHead - kEnvelopeTail) {
    return DataLossError("snapshot \"" + path +
                         "\" is truncated or has trailing garbage");
  }
  std::string_view payload =
      std::string_view(bytes).substr(kEnvelopeHead, length);
  uint64_t stored_sum = 0;
  ByteSource tail(std::string_view(bytes).substr(kEnvelopeHead + length));
  PMI_RETURN_IF_ERROR(tail.GetU64(&stored_sum));
  if (stored_sum != Fnv1a64(payload)) {
    return DataLossError("snapshot \"" + path + "\" failed its checksum");
  }
  return std::string(payload);
}

}  // namespace pmi
