#include "src/api/snapshot.h"

#include <cstring>

#include "src/core/serialize.h"
#include "src/storage/env.h"

namespace pmi {

namespace {
constexpr size_t kEnvelopeHead = 8 + 4 + 8;  // magic + version + length
constexpr size_t kEnvelopeTail = 8;          // checksum
}  // namespace

Status WriteSnapshotFile(const std::string& path, const std::string& payload,
                         Env* env) {
  if (env == nullptr) env = Env::Default();
  ByteSink head;
  head.Raw(kSnapshotMagic, sizeof(kSnapshotMagic));
  head.PutU32(kSnapshotFormatVersion);
  head.PutU64(payload.size());
  ByteSink tail;
  tail.PutU64(Fnv1a64(payload));

  // Write-then-rename, with both fsync barriers a power loss demands:
  // the temp file is synced BEFORE the rename (otherwise the rename can
  // land while the data has not, leaving a durable name on torn bytes)
  // and the parent directory is synced AFTER (otherwise the rename
  // itself is not durable and the old snapshot can resurrect).  A crash
  // or full disk mid-write never touches an existing good snapshot at
  // `path`.
  const std::string tmp = path + ".tmp";
  {
    auto file = env->NewWritableFile(tmp);
    if (!file.ok()) return file.status();
    Status write = (*file)->Append(head.bytes());
    if (write.ok()) write = (*file)->Append(payload);
    if (write.ok()) write = (*file)->Append(tail.bytes());
    if (write.ok()) write = (*file)->Sync();
    if (write.ok()) write = (*file)->Close();
    if (!write.ok()) {
      env->RemoveFile(tmp);  // best effort; the error below is the story
      return write;
    }
  }
  Status renamed = env->RenameFile(tmp, path);
  if (!renamed.ok()) {
    env->RemoveFile(tmp);
    return renamed;
  }
  return env->SyncDir(ParentDir(path));
}

StatusOr<std::string> ReadSnapshotFile(const std::string& path, Env* env) {
  if (env == nullptr) env = Env::Default();
  PMI_ASSIGN_OR_RETURN(std::string bytes, env->ReadFileToString(path));
  if (bytes.size() < kEnvelopeHead + kEnvelopeTail) {
    return DataLossError("snapshot \"" + path + "\" is too short to be valid");
  }
  if (std::memcmp(bytes.data(), kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
    return InvalidArgumentError("\"" + path + "\" is not a MetricDB snapshot");
  }
  ByteSource head(std::string_view(bytes).substr(sizeof(kSnapshotMagic)));
  uint32_t version = 0;
  uint64_t length = 0;
  PMI_RETURN_IF_ERROR(head.GetU32(&version));
  PMI_RETURN_IF_ERROR(head.GetU64(&length));
  if (version != kSnapshotFormatVersion) {
    return FailedPreconditionError(
        "snapshot format version " + std::to_string(version) +
        " is not supported (this build reads version " +
        std::to_string(kSnapshotFormatVersion) + ")");
  }
  if (length != bytes.size() - kEnvelopeHead - kEnvelopeTail) {
    return DataLossError("snapshot \"" + path +
                         "\" is truncated or has trailing garbage");
  }
  std::string_view payload =
      std::string_view(bytes).substr(kEnvelopeHead, length);
  uint64_t stored_sum = 0;
  ByteSource tail(std::string_view(bytes).substr(kEnvelopeHead + length));
  PMI_RETURN_IF_ERROR(tail.GetU64(&stored_sum));
  if (stored_sum != Fnv1a64(payload)) {
    return DataLossError("snapshot \"" + path + "\" failed its checksum");
  }
  return std::string(payload);
}

}  // namespace pmi
