// MetricDB snapshot file format (version 1).
//
// A snapshot is one self-contained binary file holding everything needed
// to reconstruct a MetricDB in a fresh process:
//
//   [ 8] magic "PMIDBSNP"
//   [ 4] u32 format version (kSnapshotFormatVersion)
//   [ 8] u64 payload length
//   [ *] payload (composed by MetricDB::ComposePayload in
//        src/api/metric_db.cc: metric spec, index name, pivot recipe,
//        IndexOptions, dataset, pivots, the index's serialized state when
//        it implements persistence, and the update-history tail -- last
//        sequence number + liveness bitmap -- appended as a compatible
//        version-1 extension)
//   [ 8] u64 FNV-1a checksum of the payload
//
// Version policy: the version is bumped on ANY incompatible change to the
// payload layout; readers reject other versions with kFailedPrecondition
// rather than guessing.  Compatible extensions append to the payload tail
// within a version.  Corruption (bad magic length, short file, checksum
// mismatch, implausible section sizes) is kDataLoss; an unknown index or
// metric name inside a well-formed snapshot is kNotFound.
//
// This header owns only the envelope; MetricDB composes the payload.

#ifndef PMI_API_SNAPSHOT_H_
#define PMI_API_SNAPSHOT_H_

#include <string>

#include "src/core/status.h"

namespace pmi {

class Env;

inline constexpr char kSnapshotMagic[8] = {'P', 'M', 'I', 'D',
                                           'B', 'S', 'N', 'P'};
inline constexpr uint32_t kSnapshotFormatVersion = 1;

/// Wraps `payload` in the envelope and writes it to `path` crash-durably:
/// a temporary file, fsynced BEFORE the atomic rename, with the parent
/// directory fsynced after -- so power loss mid-write never destroys an
/// existing snapshot at `path`, and an OK return means the bytes survive
/// power loss.  `env` = nullptr uses Env::Default().
Status WriteSnapshotFile(const std::string& path, const std::string& payload,
                         Env* env = nullptr);

/// Reads `path`, verifies magic, version, length, and checksum, and
/// returns the payload bytes.
StatusOr<std::string> ReadSnapshotFile(const std::string& path,
                                       Env* env = nullptr);

}  // namespace pmi

#endif  // PMI_API_SNAPSHOT_H_
