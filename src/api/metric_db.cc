#include "src/api/metric_db.h"

#include <cmath>
#include <cstdint>
#include <limits>

#include "src/api/snapshot.h"
#include "src/core/pivot_selection.h"
#include "src/core/rng.h"
#include "src/core/serialize.h"
#include "src/harness/registry.h"

namespace pmi {
namespace {

// -- metric construction ------------------------------------------------------

bool IsVectorMetric(const std::string& name) {
  return name == "L1" || name == "L2" || name == "Linf";
}

/// Derives the metric parameter from the data when the config left it 0:
/// the per-coordinate domain width for the vector norms, the maximum
/// string length for the edit distance.  A coordinate scan only -- no
/// distance computations.  Also decides discreteness for Linf (integer
/// coordinates enable BKT/FQT, mirroring the paper's Synthetic setup).
Status DeriveMetricParams(const std::string& name, const Dataset& data,
                          double* param, bool* discrete) {
  if (IsVectorMetric(name)) {
    if (data.kind() != ObjectKind::kVector) {
      return InvalidArgumentError("metric \"" + name +
                                  "\" requires a vector dataset");
    }
    *discrete = false;
    // The coordinate scan feeds two consumers: the derived domain width
    // and Linf discreteness.  With an explicit param, only Linf still
    // needs it -- skip the O(n*dim) pass for L1/L2.
    if (*param > 0 && name != "Linf") return OkStatus();
    double lo = std::numeric_limits<double>::max();
    double hi = std::numeric_limits<double>::lowest();
    bool integral = true;
    for (ObjectId id = 0; id < data.size(); ++id) {
      ObjectView v = data.view(id);
      for (uint32_t i = 0; i < v.dim; ++i) {
        lo = std::min(lo, double(v.vec[i]));
        hi = std::max(hi, double(v.vec[i]));
        integral = integral && v.vec[i] == std::floor(v.vec[i]);
      }
    }
    if (*param <= 0) *param = std::max(hi - lo, 1.0);
    *discrete = name == "Linf" && integral;
    return OkStatus();
  }
  if (name == "edit") {
    if (data.kind() != ObjectKind::kString) {
      return InvalidArgumentError("metric \"edit\" requires a string dataset");
    }
    if (*param <= 0) {
      uint32_t max_len = 1;
      for (ObjectId id = 0; id < data.size(); ++id) {
        max_len = std::max(max_len, data.view(id).len);
      }
      *param = max_len;
    }
    *discrete = true;
    return OkStatus();
  }
  return NotFoundError("unknown metric name: \"" + name +
                       "\" (supported: L1, L2, Linf, edit)");
}

StatusOr<std::unique_ptr<Metric>> InstantiateMetric(const std::string& name,
                                                    const Dataset& data,
                                                    double param,
                                                    bool discrete) {
  if (IsVectorMetric(name) && data.kind() != ObjectKind::kVector) {
    return InvalidArgumentError("metric \"" + name +
                                "\" requires a vector dataset");
  }
  if (name == "edit" && data.kind() != ObjectKind::kString) {
    return InvalidArgumentError("metric \"edit\" requires a string dataset");
  }
  if (param <= 0) {
    return InvalidArgumentError("metric parameter must be positive");
  }
  std::unique_ptr<Metric> metric;
  if (name == "L1") {
    metric = std::make_unique<L1Metric>(data.dim(), param);
  } else if (name == "L2") {
    metric = std::make_unique<L2Metric>(data.dim(), param);
  } else if (name == "Linf") {
    metric = std::make_unique<LInfMetric>(data.dim(), param, discrete);
  } else if (name == "edit") {
    metric = std::make_unique<EditDistanceMetric>(
        static_cast<uint32_t>(param));
  } else {
    return NotFoundError("unknown metric name: \"" + name +
                         "\" (supported: L1, L2, Linf, edit)");
  }
  return metric;
}

// -- pivot selection ----------------------------------------------------------

StatusOr<PivotSet> SelectPivots(const Dataset& data, const Metric& metric,
                                const MetricDBConfig& config) {
  if (config.pivot_set.has_value()) {
    // An injected pivot set gets the same payload gate as query views:
    // the metric kernels would otherwise read mismatched ObjectViews.
    for (uint32_t i = 0; i < config.pivot_set->size(); ++i) {
      ObjectView p = config.pivot_set->pivot(i);
      if (p.kind != data.kind() ||
          (p.kind == ObjectKind::kVector && p.dim != data.dim())) {
        return InvalidArgumentError(
            "pivot_set objects do not match the dataset's kind/dimension");
      }
    }
    return *config.pivot_set;
  }
  if (config.pivot_count == 0) {
    return InvalidArgumentError("pivot_count must be >= 1");
  }
  PivotSelectionOptions po;
  po.seed = config.options.seed;
  // Selection cost is deliberately unaccounted, matching the harness
  // convention (SelectSharedPivots): pivot selection is a one-time setup
  // step outside every reported cost.
  PerfCounters scratch;
  DistanceComputer d(&metric, &scratch);
  if (config.pivot_method == "hfi") {
    return PivotSet(data, SelectPivotsHFI(data, d, config.pivot_count, po));
  }
  if (config.pivot_method == "hf") {
    return PivotSet(data, SelectPivotsHF(data, d, config.pivot_count, po));
  }
  if (config.pivot_method == "random") {
    Rng rng(po.seed);
    return PivotSet(data, SelectPivotsRandom(data, config.pivot_count, rng));
  }
  return InvalidArgumentError("unknown pivot_method \"" +
                              config.pivot_method +
                              "\" (supported: hfi, hf, random)");
}

/// The registry's applicability flags, enforced recoverably.
Status CheckApplicability(const std::string& index_name,
                          const Metric& metric) {
  const IndexSpec* spec = FindIndexSpec(index_name);
  if (spec != nullptr && spec->discrete_only && !metric.discrete()) {
    return FailedPreconditionError(
        index_name + " requires a discrete metric, but \"" + metric.name() +
        "\" is continuous");
  }
  return OkStatus();
}

// -- IndexOptions snapshot block ---------------------------------------------

void WriteOptions(const IndexOptions& o, ByteSink* out) {
  out->PutU32(o.page_size);
  out->PutU32(o.cache_bytes);
  out->PutU64(o.seed);
  out->PutU32(o.mvpt_arity);
  out->PutU32(o.tree_leaf_capacity);
  out->PutU32(o.tree_fanout);
  out->PutU32(o.ept_group_size);
  out->PutU32(o.ept_cp_scale);
  out->PutU32(o.ept_sample_size);
  out->PutU32(o.mindex_maxnum);
  out->PutU32(o.spb_bits_per_dim);
}

Status ReadOptions(ByteSource* in, IndexOptions* o) {
  PMI_RETURN_IF_ERROR(in->GetU32(&o->page_size));
  PMI_RETURN_IF_ERROR(in->GetU32(&o->cache_bytes));
  PMI_RETURN_IF_ERROR(in->GetU64(&o->seed));
  PMI_RETURN_IF_ERROR(in->GetU32(&o->mvpt_arity));
  PMI_RETURN_IF_ERROR(in->GetU32(&o->tree_leaf_capacity));
  PMI_RETURN_IF_ERROR(in->GetU32(&o->tree_fanout));
  PMI_RETURN_IF_ERROR(in->GetU32(&o->ept_group_size));
  PMI_RETURN_IF_ERROR(in->GetU32(&o->ept_cp_scale));
  PMI_RETURN_IF_ERROR(in->GetU32(&o->ept_sample_size));
  PMI_RETURN_IF_ERROR(in->GetU32(&o->mindex_maxnum));
  PMI_RETURN_IF_ERROR(in->GetU32(&o->spb_bits_per_dim));
  return OkStatus();
}

}  // namespace

StatusOr<MetricDB> MetricDB::Create(const MetricDBConfig& config,
                                    Dataset data) {
  if (data.empty()) {
    return InvalidArgumentError("dataset must be non-empty");
  }
  PMI_RETURN_IF_ERROR(ValidateOptions(config.options));

  MetricDB db;
  db.config_ = config;
  db.metric_param_used_ = config.metric_param;
  PMI_RETURN_IF_ERROR(DeriveMetricParams(
      config.metric_name, data, &db.metric_param_used_, &db.metric_discrete_));
  PMI_ASSIGN_OR_RETURN(
      std::unique_ptr<Metric> metric,
      InstantiateMetric(config.metric_name, data, db.metric_param_used_,
                        db.metric_discrete_));
  PMI_RETURN_IF_ERROR(CheckApplicability(config.index_name, *metric));

  // Construct the index before pivot selection: an unknown name or a
  // min_pivots violation must not cost an HFI selection pass first.
  const uint32_t requested_pivots = config.pivot_set.has_value()
                                        ? config.pivot_set->size()
                                        : config.pivot_count;
  PMI_ASSIGN_OR_RETURN(
      std::unique_ptr<MetricIndex> index,
      TryMakeIndex(config.index_name, config.options, requested_pivots));
  PMI_ASSIGN_OR_RETURN(PivotSet pivots, SelectPivots(data, *metric, config));
  // Selection clamps to the dataset size, so the effective count can
  // undercut the requested one; re-check the index's floor against it.
  const IndexSpec* spec = FindIndexSpec(config.index_name);
  if (spec != nullptr && pivots.size() < spec->min_pivots) {
    return InvalidArgumentError(
        config.index_name + " requires at least " +
        std::to_string(spec->min_pivots) + " pivots, but only " +
        std::to_string(pivots.size()) + " could be selected");
  }

  // Ownership transfers last, after every fallible step: unique_ptrs
  // give the index stable addresses to borrow across facade moves.
  db.data_ = std::make_unique<Dataset>(std::move(data));
  db.metric_ = std::move(metric);
  db.pivots_ = std::make_unique<PivotSet>(std::move(pivots));
  db.index_ = std::move(index);
  db.build_stats_ = db.index_->Build(*db.data_, *db.metric_, *db.pivots_);
  return db;
}

Status MetricDB::ValidateRequest(const QueryRequest& request) const {
  if (request.type == QueryType::kRange) {
    if (!(request.radius >= 0) || !std::isfinite(request.radius)) {
      return InvalidArgumentError("range query radius must be finite and >= 0");
    }
  } else {
    if (request.k == 0) {
      return InvalidArgumentError("kNN query k must be >= 1");
    }
  }
  for (const ObjectView& q : request.batch) {
    if (q.kind != data_->kind()) {
      return InvalidArgumentError(
          "query object kind does not match the dataset");
    }
    if (q.kind == ObjectKind::kVector && q.dim != data_->dim()) {
      return InvalidArgumentError(
          "query vector has dimension " + std::to_string(q.dim) +
          ", dataset has " + std::to_string(data_->dim()));
    }
  }
  return OkStatus();
}

StatusOr<QueryResult> MetricDB::Query(const QueryRequest& request) const {
  PMI_RETURN_IF_ERROR(ValidateRequest(request));
  QueryResult result;
  if (request.type == QueryType::kRange) {
    result.stats =
        index_->RangeQueryBatch(request.batch, request.radius, &result.ids);
  } else {
    result.stats =
        index_->KnnQueryBatch(request.batch, request.k, &result.neighbors);
  }
  return result;
}

Status MetricDB::Save(const std::string& path) const {
  ByteSink payload;
  payload.PutString(config_.metric_name);
  payload.PutDouble(metric_param_used_);
  payload.PutU8(metric_discrete_ ? 1 : 0);
  payload.PutString(config_.index_name);
  payload.PutString(config_.pivot_method);
  payload.PutU32(config_.pivot_count);
  WriteOptions(config_.options, &payload);
  SerializeDataset(*data_, &payload);
  SerializePivotSet(*pivots_, &payload);

  ByteSink state;
  Status saved = index_->SaveState(&state);
  if (saved.ok()) {
    payload.PutU8(1);
    payload.PutString(state.bytes());
  } else if (saved.code() == StatusCode::kUnimplemented) {
    // Persistence is optional per index: the snapshot still carries the
    // dataset and pivots, and Open rebuilds the index from them.
    payload.PutU8(0);
  } else {
    return saved;
  }
  return WriteSnapshotFile(path, payload.bytes());
}

StatusOr<MetricDB> MetricDB::Open(const std::string& path) {
  PMI_ASSIGN_OR_RETURN(std::string payload, ReadSnapshotFile(path));
  ByteSource in(payload);

  MetricDB db;
  uint8_t discrete = 0;
  PMI_RETURN_IF_ERROR(in.GetString(&db.config_.metric_name));
  PMI_RETURN_IF_ERROR(in.GetDouble(&db.metric_param_used_));
  PMI_RETURN_IF_ERROR(in.GetU8(&discrete));
  db.metric_discrete_ = discrete != 0;
  db.config_.metric_param = db.metric_param_used_;
  PMI_RETURN_IF_ERROR(in.GetString(&db.config_.index_name));
  PMI_RETURN_IF_ERROR(in.GetString(&db.config_.pivot_method));
  PMI_RETURN_IF_ERROR(in.GetU32(&db.config_.pivot_count));
  PMI_RETURN_IF_ERROR(ReadOptions(&in, &db.config_.options));
  PMI_RETURN_IF_ERROR(ValidateOptions(db.config_.options));

  PMI_ASSIGN_OR_RETURN(Dataset data, DeserializeDataset(&in));
  if (data.empty()) {
    return DataLossError("snapshot holds an empty dataset");
  }
  db.data_ = std::make_unique<Dataset>(std::move(data));
  PMI_ASSIGN_OR_RETURN(PivotSet pivots, DeserializePivotSet(&in));
  db.pivots_ = std::make_unique<PivotSet>(std::move(pivots));
  PMI_ASSIGN_OR_RETURN(
      db.metric_,
      InstantiateMetric(db.config_.metric_name, *db.data_,
                        db.metric_param_used_, db.metric_discrete_));
  PMI_RETURN_IF_ERROR(CheckApplicability(db.config_.index_name, *db.metric_));
  PMI_ASSIGN_OR_RETURN(db.index_,
                       TryMakeIndex(db.config_.index_name, db.config_.options,
                                    db.pivots_->size()));

  uint8_t has_state = 0;
  PMI_RETURN_IF_ERROR(in.GetU8(&has_state));
  if (has_state != 0) {
    std::string state;
    PMI_RETURN_IF_ERROR(in.GetString(&state));
    ByteSource state_in(state);
    OpStats stats;
    PMI_RETURN_IF_ERROR(db.index_->LoadState(*db.data_, *db.metric_,
                                             *db.pivots_, &state_in, &stats));
    db.build_stats_ = stats;
    db.restored_ = true;
  } else {
    db.build_stats_ = db.index_->Build(*db.data_, *db.metric_, *db.pivots_);
  }
  return db;
}

}  // namespace pmi
