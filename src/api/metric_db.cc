#include "src/api/metric_db.h"

#include <unistd.h>

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <unordered_map>
#include <utility>

#include "src/api/snapshot.h"
#include "src/core/pivot_selection.h"
#include "src/core/rng.h"
#include "src/core/serialize.h"
#include "src/harness/registry.h"

namespace pmi {
namespace {

// -- metric construction ------------------------------------------------------

bool IsVectorMetric(const std::string& name) {
  return name == "L1" || name == "L2" || name == "Linf";
}

/// Derives the metric parameter from the data when the config left it 0:
/// the per-coordinate domain width for the vector norms, the maximum
/// string length for the edit distance.  A coordinate scan only -- no
/// distance computations.  Also decides discreteness for Linf (integer
/// coordinates enable BKT/FQT, mirroring the paper's Synthetic setup).
Status DeriveMetricParams(const std::string& name, const Dataset& data,
                          double* param, bool* discrete) {
  if (IsVectorMetric(name)) {
    if (data.kind() != ObjectKind::kVector) {
      return InvalidArgumentError("metric \"" + name +
                                  "\" requires a vector dataset");
    }
    *discrete = false;
    // The coordinate scan feeds two consumers: the derived domain width
    // and Linf discreteness.  With an explicit param, only Linf still
    // needs it -- skip the O(n*dim) pass for L1/L2.
    if (*param > 0 && name != "Linf") return OkStatus();
    double lo = std::numeric_limits<double>::max();
    double hi = std::numeric_limits<double>::lowest();
    bool integral = true;
    for (ObjectId id = 0; id < data.size(); ++id) {
      ObjectView v = data.view(id);
      for (uint32_t i = 0; i < v.dim; ++i) {
        lo = std::min(lo, double(v.vec[i]));
        hi = std::max(hi, double(v.vec[i]));
        integral = integral && v.vec[i] == std::floor(v.vec[i]);
      }
    }
    if (*param <= 0) *param = std::max(hi - lo, 1.0);
    *discrete = name == "Linf" && integral;
    return OkStatus();
  }
  if (name == "edit") {
    if (data.kind() != ObjectKind::kString) {
      return InvalidArgumentError("metric \"edit\" requires a string dataset");
    }
    if (*param <= 0) {
      uint32_t max_len = 1;
      for (ObjectId id = 0; id < data.size(); ++id) {
        max_len = std::max(max_len, data.view(id).len);
      }
      *param = max_len;
    }
    *discrete = true;
    return OkStatus();
  }
  return NotFoundError("unknown metric name: \"" + name +
                       "\" (supported: L1, L2, Linf, edit)");
}

StatusOr<std::unique_ptr<Metric>> InstantiateMetric(const std::string& name,
                                                    const Dataset& data,
                                                    double param,
                                                    bool discrete) {
  if (IsVectorMetric(name) && data.kind() != ObjectKind::kVector) {
    return InvalidArgumentError("metric \"" + name +
                                "\" requires a vector dataset");
  }
  if (name == "edit" && data.kind() != ObjectKind::kString) {
    return InvalidArgumentError("metric \"edit\" requires a string dataset");
  }
  if (param <= 0) {
    return InvalidArgumentError("metric parameter must be positive");
  }
  std::unique_ptr<Metric> metric;
  if (name == "L1") {
    metric = std::make_unique<L1Metric>(data.dim(), param);
  } else if (name == "L2") {
    metric = std::make_unique<L2Metric>(data.dim(), param);
  } else if (name == "Linf") {
    metric = std::make_unique<LInfMetric>(data.dim(), param, discrete);
  } else if (name == "edit") {
    metric = std::make_unique<EditDistanceMetric>(
        static_cast<uint32_t>(param));
  } else {
    return NotFoundError("unknown metric name: \"" + name +
                         "\" (supported: L1, L2, Linf, edit)");
  }
  return metric;
}

// -- pivot selection ----------------------------------------------------------

StatusOr<PivotSet> SelectPivots(const Dataset& data, const Metric& metric,
                                const MetricDBConfig& config) {
  if (config.pivot_set.has_value()) {
    // An injected pivot set gets the same payload gate as query views:
    // the metric kernels would otherwise read mismatched ObjectViews.
    for (uint32_t i = 0; i < config.pivot_set->size(); ++i) {
      ObjectView p = config.pivot_set->pivot(i);
      if (p.kind != data.kind() ||
          (p.kind == ObjectKind::kVector && p.dim != data.dim())) {
        return InvalidArgumentError(
            "pivot_set objects do not match the dataset's kind/dimension");
      }
    }
    return *config.pivot_set;
  }
  if (config.pivot_count == 0) {
    return InvalidArgumentError("pivot_count must be >= 1");
  }
  PivotSelectionOptions po;
  po.seed = config.options.seed;
  // Selection cost is deliberately unaccounted, matching the harness
  // convention (SelectSharedPivots): pivot selection is a one-time setup
  // step outside every reported cost.
  PerfCounters scratch;
  DistanceComputer d(&metric, &scratch);
  if (config.pivot_method == "hfi") {
    return PivotSet(data, SelectPivotsHFI(data, d, config.pivot_count, po));
  }
  if (config.pivot_method == "hf") {
    return PivotSet(data, SelectPivotsHF(data, d, config.pivot_count, po));
  }
  if (config.pivot_method == "random") {
    Rng rng(po.seed);
    return PivotSet(data, SelectPivotsRandom(data, config.pivot_count, rng));
  }
  return InvalidArgumentError("unknown pivot_method \"" +
                              config.pivot_method +
                              "\" (supported: hfi, hf, random)");
}

/// The registry's applicability flags, enforced recoverably.
Status CheckApplicability(const std::string& index_name,
                          const Metric& metric) {
  const IndexSpec* spec = FindIndexSpec(index_name);
  if (spec != nullptr && spec->discrete_only && !metric.discrete()) {
    return FailedPreconditionError(
        index_name + " requires a discrete metric, but \"" + metric.name() +
        "\" is continuous");
  }
  return OkStatus();
}

// -- IndexOptions snapshot block ---------------------------------------------

void WriteOptions(const IndexOptions& o, ByteSink* out) {
  out->PutU32(o.page_size);
  out->PutU32(o.cache_bytes);
  out->PutU64(o.seed);
  out->PutU32(o.mvpt_arity);
  out->PutU32(o.tree_leaf_capacity);
  out->PutU32(o.tree_fanout);
  out->PutU32(o.ept_group_size);
  out->PutU32(o.ept_cp_scale);
  out->PutU32(o.ept_sample_size);
  out->PutU32(o.mindex_maxnum);
  out->PutU32(o.spb_bits_per_dim);
}

Status ReadOptions(ByteSource* in, IndexOptions* o) {
  PMI_RETURN_IF_ERROR(in->GetU32(&o->page_size));
  PMI_RETURN_IF_ERROR(in->GetU32(&o->cache_bytes));
  PMI_RETURN_IF_ERROR(in->GetU64(&o->seed));
  PMI_RETURN_IF_ERROR(in->GetU32(&o->mvpt_arity));
  PMI_RETURN_IF_ERROR(in->GetU32(&o->tree_leaf_capacity));
  PMI_RETURN_IF_ERROR(in->GetU32(&o->tree_fanout));
  PMI_RETURN_IF_ERROR(in->GetU32(&o->ept_group_size));
  PMI_RETURN_IF_ERROR(in->GetU32(&o->ept_cp_scale));
  PMI_RETURN_IF_ERROR(in->GetU32(&o->ept_sample_size));
  PMI_RETURN_IF_ERROR(in->GetU32(&o->mindex_maxnum));
  PMI_RETURN_IF_ERROR(in->GetU32(&o->spb_bits_per_dim));
  return OkStatus();
}

// -- checkpoint/WAL file naming ----------------------------------------------
//
// A durable directory holds numbered generations: ckpt-NNNNNN.pmidb is a
// full snapshot, wal-NNNNNN.log the updates applied AFTER it.  Recovery
// picks the newest readable checkpoint g and replays wal-g, wal-g+1, ...

std::string CkptName(uint64_t gen) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "ckpt-%06" PRIu64 ".pmidb", gen);
  return buf;
}

std::string WalName(uint64_t gen) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "wal-%06" PRIu64 ".log", gen);
  return buf;
}

/// Parses "<prefix>NNNNNN<suffix>"; false for any other name (durable
/// directories may hold foreign files -- they are simply ignored).
bool ParseGenName(const std::string& name, const std::string& prefix,
                  const std::string& suffix, uint64_t* gen) {
  if (name.size() <= prefix.size() + suffix.size()) return false;
  if (name.compare(0, prefix.size(), prefix) != 0) return false;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return false;
  }
  uint64_t value = 0;
  for (size_t i = prefix.size(); i < name.size() - suffix.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    value = value * 10 + (name[i] - '0');
  }
  *gen = value;
  return true;
}

// -- directory LOCK file ------------------------------------------------------
//
// A durable directory is single-writer: CreateDurable/OpenDurable take
// a kernel advisory lock (Env::LockFile, flock) on LOCK and write
// "pid N\n" into it; every later open is refused with
// kFailedPrecondition until the owner closes.  The kernel lock is the
// cross-process arbiter -- it dies with its holder, and every staleness
// decision and contents rewrite below happens WHILE holding it, so
// there is no remove-and-recreate window in which two openers could
// each install their own LOCK (the TOCTOU a pure O_EXCL protocol has).
// Contents left behind by a dead process (or by this process -- the
// fault harness simulates crashes without exiting, so the dead "owner"
// can be ourselves) are crash debris, overwritten in place under the
// lock; contents naming a live foreign process whose kernel lock is
// gone are ambiguous (written outside this protocol) and refused.
// Release removes the file while the kernel lock is still held, then
// drops the handle, so the path never exists unlocked.

constexpr char kLockFileName[] = "LOCK";

/// Directories locked by THIS process.  The LOCK file's pid cannot tell
/// a live same-process owner from this process's own crashed simulation
/// (the fault harness "kills" a database without exiting), so same-pid
/// LOCK files are treated as stale at the file level and actual
/// same-process exclusion lives here.  Keyed by the directory string as
/// passed in; callers that alias the same directory under two spellings
/// get file-level (cross-process) exclusion only.
std::mutex g_lock_registry_mu;
std::vector<std::string>& LockRegistry() {
  static std::vector<std::string>* dirs = new std::vector<std::string>;
  return *dirs;
}

bool RegisterDirLock(const std::string& dir) {
  std::lock_guard<std::mutex> lock(g_lock_registry_mu);
  std::vector<std::string>& dirs = LockRegistry();
  if (std::find(dirs.begin(), dirs.end(), dir) != dirs.end()) return false;
  dirs.push_back(dir);
  return true;
}

void UnregisterDirLock(const std::string& dir) {
  std::lock_guard<std::mutex> lock(g_lock_registry_mu);
  std::vector<std::string>& dirs = LockRegistry();
  auto it = std::find(dirs.begin(), dirs.end(), dir);
  if (it != dirs.end()) dirs.erase(it);
}

/// Pid from "pid N..." LOCK contents; -1 when unparsable (treated as
/// stale -- an unreadable lock protects nobody).
int64_t ParseLockPid(const std::string& contents) {
  const std::string prefix = "pid ";
  if (contents.compare(0, prefix.size(), prefix) != 0) return -1;
  int64_t value = 0;
  size_t i = prefix.size();
  if (i >= contents.size() || contents[i] < '0' || contents[i] > '9') {
    return -1;
  }
  for (; i < contents.size() && contents[i] >= '0' && contents[i] <= '9';
       ++i) {
    value = value * 10 + (contents[i] - '0');
  }
  return value;
}

StatusOr<std::unique_ptr<FileLock>> AcquireDirLockFile(Env* env,
                                                       const std::string& dir);

/// Takes the process-local registration first (same-process exclusion),
/// then the LOCK file (cross-process exclusion with stale detection).
StatusOr<std::unique_ptr<FileLock>> AcquireDirLock(Env* env,
                                                   const std::string& dir) {
  if (!RegisterDirLock(dir)) {
    return FailedPreconditionError(
        dir + " is locked by another database in this process");
  }
  StatusOr<std::unique_ptr<FileLock>> acquired = AcquireDirLockFile(env, dir);
  if (!acquired.ok()) UnregisterDirLock(dir);
  return acquired;
}

StatusOr<std::unique_ptr<FileLock>> AcquireDirLockFile(
    Env* env, const std::string& dir) {
  const std::string path = JoinPath(dir, kLockFileName);
  StatusOr<std::unique_ptr<FileLock>> lock = env->LockFile(path);
  if (!lock.ok()) {
    if (lock.status().code() == StatusCode::kFailedPrecondition) {
      // Another process holds the kernel lock right now.  Name it from
      // the contents, best-effort (the holder may be mid-rewrite).
      StatusOr<std::string> contents = env->ReadFileToString(path);
      const int64_t pid = contents.ok() ? ParseLockPid(*contents) : -1;
      if (pid >= 0) {
        return FailedPreconditionError(dir + " is locked by process " +
                                       std::to_string(pid));
      }
      return FailedPreconditionError(dir + " is locked by another process");
    }
    return lock.status();
  }
  // We hold the kernel lock: whatever the file said, its writer no
  // longer holds it.  Same-pid or dead-pid or unparsable contents are
  // crash debris, broken by overwriting in place; a live foreign pid
  // means some claim made outside kernel arbitration -- refuse
  // conservatively (dropping the handle leaves the file exactly as
  // found).
  const std::string& prev = (*lock)->previous_contents();
  if (!prev.empty()) {
    const int64_t pid = ParseLockPid(prev);
    const bool stale = pid < 0 ||
                       pid == static_cast<int64_t>(::getpid()) ||
                       !ProcessAlive(pid);
    if (!stale) {
      return FailedPreconditionError(
          dir + " is locked by process " + std::to_string(pid));
    }
  }
  const std::string contents =
      "pid " + std::to_string(static_cast<int64_t>(::getpid())) + "\n";
  PMI_RETURN_IF_ERROR((*lock)->Overwrite(contents));
  return lock;
}

}  // namespace

StatusOr<double> ResolveMetricParam(const std::string& metric_name,
                                    const Dataset& data, double param) {
  bool discrete = false;
  PMI_RETURN_IF_ERROR(DeriveMetricParams(metric_name, data, &param, &discrete));
  return param;
}

DurabilityOptions DurabilityOptions::FromEnv() {
  DurabilityOptions o;
  if (const char* s = std::getenv("PMI_WAL_SYNC")) {
    StatusOr<SyncMode> mode = ParseSyncMode(s);
    if (mode.ok()) o.sync_mode = *mode;
  }
  if (const char* s = std::getenv("PMI_WAL_SYNC_INTERVAL")) {
    char* end = nullptr;
    unsigned long v = std::strtoul(s, &end, 10);
    if (end != s && *end == '\0' && v >= 1) {
      o.sync_interval_commits = static_cast<uint32_t>(v);
    }
  }
  return o;
}

StatusOr<MetricDB> MetricDB::Create(const MetricDBConfig& config,
                                    Dataset data) {
  if (data.empty()) {
    return InvalidArgumentError("dataset must be non-empty");
  }
  PMI_RETURN_IF_ERROR(ValidateOptions(config.options));

  MetricDB db;
  db.config_ = config;
  // One physical page cache per database unless the caller installed a
  // wider-scoped one (the sharded service shares a pool across shards).
  // Pool size never affects logical PA, only pa_physical().
  if (db.config_.options.buffer_pool == nullptr) {
    db.config_.options.buffer_pool = std::make_shared<BufferPool>(
        db.config_.options.page_size, db.config_.options.cache_bytes);
  }
  db.metric_param_used_ = config.metric_param;
  PMI_RETURN_IF_ERROR(DeriveMetricParams(
      config.metric_name, data, &db.metric_param_used_, &db.metric_discrete_));
  PMI_ASSIGN_OR_RETURN(
      std::unique_ptr<Metric> metric,
      InstantiateMetric(config.metric_name, data, db.metric_param_used_,
                        db.metric_discrete_));
  PMI_RETURN_IF_ERROR(CheckApplicability(config.index_name, *metric));

  // Construct the index before pivot selection: an unknown name or a
  // min_pivots violation must not cost an HFI selection pass first.
  const uint32_t requested_pivots = config.pivot_set.has_value()
                                        ? config.pivot_set->size()
                                        : config.pivot_count;
  PMI_ASSIGN_OR_RETURN(
      std::unique_ptr<MetricIndex> index,
      TryMakeIndex(config.index_name, db.config_.options, requested_pivots));
  PMI_ASSIGN_OR_RETURN(PivotSet pivots, SelectPivots(data, *metric, config));
  // Selection clamps to the dataset size, so the effective count can
  // undercut the requested one; re-check the index's floor against it.
  const IndexSpec* spec = FindIndexSpec(config.index_name);
  if (spec != nullptr && pivots.size() < spec->min_pivots) {
    return InvalidArgumentError(
        config.index_name + " requires at least " +
        std::to_string(spec->min_pivots) + " pivots, but only " +
        std::to_string(pivots.size()) + " could be selected");
  }

  // Ownership transfers last, after every fallible step: shared_ptrs
  // give the index stable addresses to borrow across facade moves and
  // let published versions co-own them past the facade's own lifetime.
  db.data_ = std::make_shared<Dataset>(std::move(data));
  db.metric_ = std::move(metric);
  db.pivots_ = std::make_shared<PivotSet>(std::move(pivots));
  db.index_ = std::move(index);
  db.build_stats_ = db.index_->Build(*db.data_, *db.metric_, *db.pivots_);
  db.live_.assign(db.data_->size(), 1);
  db.InitVersioning();
  return db;
}

bool MetricDB::versioned() const {
  return cc_ != nullptr && cc_->table != nullptr;
}

void MetricDB::InitVersioning() {
  if (!index_->concurrent_queries()) return;
  // The probe doubles as the support check: an index that cannot
  // shadow-copy cannot promise published-version immutability.
  std::unique_ptr<MetricIndex> probe = index_->Clone();
  if (probe == nullptr) return;
  auto v = std::make_shared<TableVersion>();
  v->data = data_;
  v->metric = metric_;
  v->pivots = pivots_;
  v->index = index_;
  v->live = live_;
  v->sequence = seq_;
  cc_->table = std::make_unique<VersionedTable>(std::move(v));
}

Status MetricDB::ValidateRequest(const QueryRequest& request,
                                 const Dataset& data) {
  if (request.type == QueryType::kRange) {
    if (!request.ks.empty()) {
      return InvalidArgumentError(
          "range query carries per-query ks (kNN descriptors)");
    }
    if (request.radii.empty()) {
      if (!(request.radius >= 0) || !std::isfinite(request.radius)) {
        return InvalidArgumentError(
            "range query radius must be finite and >= 0");
      }
    } else {
      if (request.radii.size() != request.batch.size()) {
        return InvalidArgumentError(
            "per-query radii count " + std::to_string(request.radii.size()) +
            " does not match batch size " +
            std::to_string(request.batch.size()));
      }
      for (double r : request.radii) {
        if (!(r >= 0) || !std::isfinite(r)) {
          return InvalidArgumentError(
              "every per-query radius must be finite and >= 0");
        }
      }
    }
  } else {
    if (!request.radii.empty()) {
      return InvalidArgumentError(
          "kNN query carries per-query radii (range descriptors)");
    }
    if (request.ks.empty()) {
      if (request.k == 0) {
        return InvalidArgumentError("kNN query k must be >= 1");
      }
    } else {
      if (request.ks.size() != request.batch.size()) {
        return InvalidArgumentError(
            "per-query k count " + std::to_string(request.ks.size()) +
            " does not match batch size " +
            std::to_string(request.batch.size()));
      }
      for (size_t k : request.ks) {
        if (k == 0) {
          return InvalidArgumentError("every per-query k must be >= 1");
        }
      }
    }
  }
  for (const ObjectView& q : request.batch) {
    if (q.kind != data.kind()) {
      return InvalidArgumentError(
          "query object kind does not match the dataset");
    }
    if (q.kind == ObjectKind::kVector && q.dim != data.dim()) {
      return InvalidArgumentError(
          "query vector has dimension " + std::to_string(q.dim) +
          ", dataset has " + std::to_string(data.dim()));
    }
  }
  return OkStatus();
}

QueryResult MetricDB::AnswerAtVersion(const TableVersion& v,
                                      const QueryRequest& request) {
  QueryResult result;
  const size_t n = request.batch.size();
  if (request.type == QueryType::kRange) {
    std::vector<double> uniform;
    const std::vector<double>* radii = &request.radii;
    if (radii->empty()) {
      uniform.assign(n, request.radius);
      radii = &uniform;
    }
    result.stats =
        v.index->RangeQueryBatchShared(request.batch, *radii, &result.ids);
  } else {
    std::vector<size_t> uniform;
    const std::vector<size_t>* ks = &request.ks;
    if (ks->empty()) {
      uniform.assign(n, request.k);
      ks = &uniform;
    }
    result.stats =
        v.index->KnnQueryBatchShared(request.batch, *ks, &result.neighbors);
  }
  return result;
}

StatusOr<QueryResult> MetricDB::Query(const QueryRequest& request) const {
  if (cc_->closed.load(std::memory_order_acquire)) {
    return FailedPreconditionError("database is closed");
  }
  PMI_RETURN_IF_ERROR(ValidateRequest(request, *data_));
  if (cc_->table != nullptr) {
    // Versioned fast path: pin the published snapshot and answer
    // against it -- no lock shared with the writer or other readers.
    VersionedTable::ReadPin pin = cc_->table->Pin();
    return AnswerAtVersion(*pin, request);
  }
  // Legacy serialized mode: the index's counters and internal scratch
  // (e.g. a disk buffer pool) are not concurrency-safe, so queries
  // exclude the writer and each other.
  std::lock_guard<std::mutex> lock(cc_->writer_mu);
  QueryResult result;
  if (request.type == QueryType::kRange) {
    if (request.radii.empty()) {
      result.stats =
          index_->RangeQueryBatch(request.batch, request.radius, &result.ids);
    } else {
      result.stats =
          index_->RangeQueryBatch(request.batch, request.radii, &result.ids);
    }
  } else {
    if (request.ks.empty()) {
      result.stats =
          index_->KnnQueryBatch(request.batch, request.k, &result.neighbors);
    } else {
      result.stats =
          index_->KnnQueryBatch(request.batch, request.ks, &result.neighbors);
    }
  }
  return result;
}

StatusOr<MetricDB::ReadView> MetricDB::GetReadView() const {
  if (cc_->closed.load(std::memory_order_acquire)) {
    return FailedPreconditionError("database is closed");
  }
  if (cc_->table == nullptr) {
    return FailedPreconditionError(
        config_.index_name +
        " does not support versioned read views (no shadow-copy clone)");
  }
  return ReadView(cc_->table->Acquire());
}

StatusOr<QueryResult> MetricDB::ReadView::Query(
    const QueryRequest& request) const {
  PMI_RETURN_IF_ERROR(ValidateRequest(request, *version_->data));
  return AnswerAtVersion(*version_, request);
}

Status MetricDB::Close() {
  if (cc_ == nullptr) return OkStatus();  // moved-from
  if (cc_->closed.exchange(true, std::memory_order_acq_rel)) {
    return OkStatus();
  }
  std::lock_guard<std::mutex> lock(cc_->writer_mu);
  Status result;
  if (wal_ != nullptr) {
    // Final durability barrier -- skipped once the write path is
    // poisoned (the barrier already failed; repeating it cannot
    // un-lose anything).
    if (write_status_.ok()) result = wal_->Sync();
    wal_.reset();
  }
  if (cc_->dir_lock != nullptr) {
    UnregisterDirLock(dir_);
    // File removal is best-effort and happens while the kernel lock is
    // still held, so the path never exists unlocked.  A leftover LOCK
    // (e.g. the simulated crash refuses the unlink) is detected as
    // crash debris on the next open.
    env_->RemoveFile(JoinPath(dir_, kLockFileName));
    cc_->dir_lock.reset();  // releases the kernel lock
  }
  return result;
}

MetricDB::~MetricDB() {
  if (cc_ == nullptr) return;  // moved-from
  if (cc_->dir_lock != nullptr && env_ != nullptr) {
    UnregisterDirLock(dir_);
    env_->RemoveFile(JoinPath(dir_, kLockFileName));
    cc_->dir_lock.reset();
  }
}

Status MetricDB::ComposePayload(const MetricIndex& index,
                                const std::vector<uint8_t>& live,
                                uint64_t seq, ByteSink* payload) const {
  payload->PutString(config_.metric_name);
  payload->PutDouble(metric_param_used_);
  payload->PutU8(metric_discrete_ ? 1 : 0);
  payload->PutString(config_.index_name);
  payload->PutString(config_.pivot_method);
  payload->PutU32(config_.pivot_count);
  WriteOptions(config_.options, payload);
  SerializeDataset(*data_, payload);
  SerializePivotSet(*pivots_, payload);

  ByteSink state;
  Status saved = index.SaveState(&state);
  if (saved.ok()) {
    payload->PutU8(1);
    payload->PutString(state.bytes());
  } else if (saved.code() == StatusCode::kUnimplemented) {
    // Persistence is optional per index: the snapshot still carries the
    // dataset and pivots, and Open rebuilds the index from them.
    payload->PutU8(0);
  } else {
    return saved;
  }
  // Update-history tail (a compatible version-1 extension: absent in
  // older snapshots, which predate updates and are read as seq 0 /
  // all-live).  Recovery validates WAL replay against it.
  payload->PutU64(seq);
  payload->PutVector(live);
  return OkStatus();
}

Status MetricDB::SaveStateTo(const MetricIndex& index,
                             const std::vector<uint8_t>& live, uint64_t seq,
                             const std::string& path, Env* env) const {
  ByteSink payload;
  PMI_RETURN_IF_ERROR(ComposePayload(index, live, seq, &payload));
  return WriteSnapshotFile(path, payload.bytes(), env);
}

Status MetricDB::SaveTo(const std::string& path, Env* env) const {
  if (versioned()) {
    // Snapshot the published version: consistent even while the writer
    // is mid-Apply on its clone.
    std::shared_ptr<const TableVersion> v = cc_->table->Acquire();
    return SaveStateTo(*v->index, v->live, v->sequence, path, env);
  }
  return SaveStateTo(*index_, live_, seq_, path, env);
}

Status MetricDB::Save(const std::string& path) const {
  return SaveTo(path, env_);  // nullptr -> Env::Default()
}

StatusOr<MetricDB> MetricDB::Open(const std::string& path) {
  PMI_ASSIGN_OR_RETURN(std::string payload, ReadSnapshotFile(path));
  PMI_ASSIGN_OR_RETURN(MetricDB db, FromPayload(payload));
  db.InitVersioning();
  return db;
}

StatusOr<MetricDB> MetricDB::FromPayload(const std::string& payload) {
  ByteSource in(payload);

  MetricDB db;
  uint8_t discrete = 0;
  PMI_RETURN_IF_ERROR(in.GetString(&db.config_.metric_name));
  PMI_RETURN_IF_ERROR(in.GetDouble(&db.metric_param_used_));
  PMI_RETURN_IF_ERROR(in.GetU8(&discrete));
  db.metric_discrete_ = discrete != 0;
  db.config_.metric_param = db.metric_param_used_;
  PMI_RETURN_IF_ERROR(in.GetString(&db.config_.index_name));
  PMI_RETURN_IF_ERROR(in.GetString(&db.config_.pivot_method));
  PMI_RETURN_IF_ERROR(in.GetU32(&db.config_.pivot_count));
  PMI_RETURN_IF_ERROR(ReadOptions(&in, &db.config_.options));
  PMI_RETURN_IF_ERROR(ValidateOptions(db.config_.options));
  // The pool is runtime state, never serialized: a reopened database
  // gets a fresh private cache (see Create for the sizing rule).
  db.config_.options.buffer_pool = std::make_shared<BufferPool>(
      db.config_.options.page_size, db.config_.options.cache_bytes);

  PMI_ASSIGN_OR_RETURN(Dataset data, DeserializeDataset(&in));
  if (data.empty()) {
    return DataLossError("snapshot holds an empty dataset");
  }
  db.data_ = std::make_shared<Dataset>(std::move(data));
  PMI_ASSIGN_OR_RETURN(PivotSet pivots, DeserializePivotSet(&in));
  db.pivots_ = std::make_shared<PivotSet>(std::move(pivots));
  PMI_ASSIGN_OR_RETURN(
      db.metric_,
      InstantiateMetric(db.config_.metric_name, *db.data_,
                        db.metric_param_used_, db.metric_discrete_));
  PMI_RETURN_IF_ERROR(CheckApplicability(db.config_.index_name, *db.metric_));
  PMI_ASSIGN_OR_RETURN(db.index_,
                       TryMakeIndex(db.config_.index_name, db.config_.options,
                                    db.pivots_->size()));

  uint8_t has_state = 0;
  PMI_RETURN_IF_ERROR(in.GetU8(&has_state));
  std::string state;
  if (has_state != 0) {
    PMI_RETURN_IF_ERROR(in.GetString(&state));
  }

  // Update-history tail: optional for backward compatibility (snapshots
  // written before updates existed simply end after the state block).
  if (!in.exhausted()) {
    PMI_RETURN_IF_ERROR(in.GetU64(&db.seq_));
    PMI_RETURN_IF_ERROR(in.GetVector(&db.live_));
    if (db.live_.size() != db.data_->size()) {
      return DataLossError(
          "snapshot liveness bitmap covers " +
          std::to_string(db.live_.size()) + " objects, dataset holds " +
          std::to_string(db.data_->size()));
    }
  } else {
    db.live_.assign(db.data_->size(), 1);
  }

  if (has_state != 0) {
    // Persisted index state was serialized AFTER any removes, so it
    // already reflects the liveness bitmap.
    ByteSource state_in(state);
    OpStats stats;
    PMI_RETURN_IF_ERROR(db.index_->LoadState(*db.data_, *db.metric_,
                                             *db.pivots_, &state_in, &stats));
    db.build_stats_ = stats;
    db.restored_ = true;
  } else {
    // Rebuild-on-open indexes every dataset object; replay the removes
    // of dead ids so the rebuilt index matches the saved membership.
    db.build_stats_ = db.index_->Build(*db.data_, *db.metric_, *db.pivots_);
    for (ObjectId id = 0; id < db.live_.size(); ++id) {
      if (db.live_[id] == 0) db.build_stats_ += db.index_->Remove(id);
    }
  }
  return db;
}

// -- updates ------------------------------------------------------------------

void MetricDB::ApplyToIndex(const UpdateOp& op) {
  if (op.op == WalOp::kInsert) {
    index_->Insert(op.id);
    live_[op.id] = 1;
  } else {
    index_->Remove(op.id);
    live_[op.id] = 0;
  }
  ++seq_;
}

namespace {
constexpr char kFenceMismatchPrefix[] = "sequence fence mismatch";
}  // namespace

Status SequenceFenceError(uint64_t at, uint64_t expected) {
  return FailedPreconditionError(
      std::string(kFenceMismatchPrefix) + ": database at sequence " +
      std::to_string(at) + ", caller expected " + std::to_string(expected));
}

bool IsSequenceFenceMismatch(const Status& s) {
  return s.code() == StatusCode::kFailedPrecondition &&
         s.message().rfind(kFenceMismatchPrefix, 0) == 0;
}

Status MetricDB::Apply(const std::vector<UpdateOp>& ops) {
  return Apply(ops, ApplyOptions{});
}

Status MetricDB::Apply(const std::vector<UpdateOp>& ops,
                       const ApplyOptions& aopts) {
  std::lock_guard<std::mutex> lock(cc_->writer_mu);
  if (cc_->closed.load(std::memory_order_acquire)) {
    return FailedPreconditionError("database is closed");
  }
  PMI_RETURN_IF_ERROR(write_status_);
  // The fence must be checked before ANY side effect: a mismatch means
  // the caller's view of this shard is stale (most often: a retried
  // batch whose first attempt actually reached the WAL and was replayed
  // by recovery), and committing here could double-apply it.
  if (aopts.expected_sequence.has_value() &&
      *aopts.expected_sequence != seq_) {
    return SequenceFenceError(seq_, *aopts.expected_sequence);
  }
  // Validate the whole batch against the would-be state before logging
  // anything: Apply is all-or-nothing, and nothing may reach the WAL
  // unless it will definitely be applied.
  std::unordered_map<ObjectId, bool> overlay;
  for (const UpdateOp& op : ops) {
    if (op.id >= live_.size()) {
      return InvalidArgumentError(
          "object id " + std::to_string(op.id) + " out of range (dataset: " +
          std::to_string(live_.size()) + " objects)");
    }
    auto it = overlay.find(op.id);
    bool is_live = it != overlay.end() ? it->second : live_[op.id] != 0;
    if (op.op == WalOp::kInsert && is_live) {
      return FailedPreconditionError("object " + std::to_string(op.id) +
                                     " is already present");
    }
    if (op.op == WalOp::kRemove && !is_live) {
      return FailedPreconditionError("object " + std::to_string(op.id) +
                                     " is already removed");
    }
    overlay[op.id] = op.op == WalOp::kInsert;
  }
  if (wal_ != nullptr) {
    for (size_t i = 0; i < ops.size(); ++i) {
      wal_->Add(WalRecord{ops[i].op, seq_ + i + 1, ops[i].id});
    }
    Status logged = wal_->Commit();
    if (!logged.ok()) {
      // The log tail is now suspect: applying would acknowledge an
      // unrecoverable write.  Refuse this batch and go read-only.
      write_status_ = logged;
      return logged;
    }
  }
  if (cc_->table != nullptr) {
    // Shadow apply: published versions are immutable by contract, so
    // the batch lands in a clone (copy-on-write -- every untouched
    // 256-row pivot-table block is shared) which then becomes both the
    // next published version and the writer's new working index.
    std::shared_ptr<MetricIndex> clone = index_->Clone();
    for (const UpdateOp& op : ops) {
      if (op.op == WalOp::kInsert) {
        clone->Insert(op.id);
        live_[op.id] = 1;
      } else {
        clone->Remove(op.id);
        live_[op.id] = 0;
      }
      ++seq_;
    }
    auto v = std::make_shared<TableVersion>();
    v->data = data_;
    v->metric = metric_;
    v->pivots = pivots_;
    v->index = clone;
    v->live = live_;
    v->sequence = seq_;
    index_ = std::move(clone);
    cc_->table->Publish(std::move(v));
  } else {
    for (const UpdateOp& op : ops) ApplyToIndex(op);
  }
  return OkStatus();
}

// -- durability ---------------------------------------------------------------

Status MetricDB::RotateCheckpoint() {
  // Flush the outgoing WAL so the previous (fallback) generation is
  // complete on disk.  Best-effort: the checkpoint about to be written
  // carries everything the old log held.
  if (wal_ != nullptr) wal_->Sync();

  const uint64_t next = checkpoint_gen_ + 1;
  PMI_RETURN_IF_ERROR(SaveTo(JoinPath(dir_, CkptName(next)), env_));
  PMI_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> wal_file,
                       env_->NewWritableFile(JoinPath(dir_, WalName(next))));
  PMI_RETURN_IF_ERROR(env_->SyncDir(dir_));
  wal_ = std::make_unique<WalWriter>(std::move(wal_file), dopts_.sync_mode,
                                     dopts_.sync_interval_commits);

  // Retention window: the new generation plus the previous one (the
  // corruption fallback).  Pruning is best-effort -- a leftover file
  // costs disk, not correctness.
  StatusOr<std::vector<std::string>> names = env_->ListDir(dir_);
  if (names.ok()) {
    const uint64_t keep_from = checkpoint_gen_;
    for (const std::string& name : *names) {
      uint64_t gen = 0;
      if ((ParseGenName(name, "ckpt-", ".pmidb", &gen) ||
           ParseGenName(name, "wal-", ".log", &gen)) &&
          gen < keep_from) {
        env_->RemoveFile(JoinPath(dir_, name));
      }
    }
  }
  checkpoint_gen_ = next;
  return OkStatus();
}

Status MetricDB::Checkpoint() {
  if (!durable_) {
    return FailedPreconditionError(
        "Checkpoint() requires a durable database (CreateDurable/"
        "OpenDurable)");
  }
  std::lock_guard<std::mutex> ckpt_lock(cc_->checkpoint_mu);
  if (cc_->table == nullptr) {
    // Legacy serialized mode: the whole rotation runs under the writer
    // lock.
    std::lock_guard<std::mutex> lock(cc_->writer_mu);
    if (cc_->closed.load(std::memory_order_acquire)) {
      return FailedPreconditionError("database is closed");
    }
    PMI_RETURN_IF_ERROR(write_status_);
    Status rotated = RotateCheckpoint();
    if (!rotated.ok()) {
      // A half-rotated directory is ambiguous (e.g. the new checkpoint
      // landed but its WAL did not): acknowledging more writes could
      // put them in a generation recovery never replays.  Go read-only.
      write_status_ = rotated;
    }
    return rotated;
  }

  // Versioned concurrent checkpoint: pin the state and rotate the WAL
  // under the writer lock (cheap), then serialize the pinned version
  // outside it while updates and queries proceed.
  std::shared_ptr<const TableVersion> v;
  uint64_t next = 0;
  {
    std::lock_guard<std::mutex> lock(cc_->writer_mu);
    if (cc_->closed.load(std::memory_order_acquire)) {
      return FailedPreconditionError("database is closed");
    }
    PMI_RETURN_IF_ERROR(write_status_);
    v = cc_->table->Acquire();
    next = checkpoint_gen_ + 1;
    // The outgoing generation must be complete on disk before a new one
    // starts: a silently lost tail here would be a mid-chain hole that
    // replay cannot detect once wal-(next) continues past it.
    if (wal_ != nullptr) {
      Status synced = wal_->Sync();
      if (!synced.ok()) {
        write_status_ = synced;
        return synced;
      }
    }
    StatusOr<std::unique_ptr<WritableFile>> wal_file =
        env_->NewWritableFile(JoinPath(dir_, WalName(next)));
    if (!wal_file.ok()) {
      write_status_ = wal_file.status();
      return write_status_;
    }
    Status dir_synced = env_->SyncDir(dir_);
    if (!dir_synced.ok()) {
      write_status_ = dir_synced;
      return dir_synced;
    }
    wal_ = std::make_unique<WalWriter>(std::move(*wal_file), dopts_.sync_mode,
                                       dopts_.sync_interval_commits);
  }

  // Updates committed from here on land in wal-(next), which recovery
  // replays on top of either checkpoint -- ckpt-(next) once it lands,
  // or the previous one plus the full WAL chain if we crash first.
  Status saved = SaveStateTo(*v->index, v->live, v->sequence,
                             JoinPath(dir_, CkptName(next)), env_);
  std::lock_guard<std::mutex> lock(cc_->writer_mu);
  if (!saved.ok()) {
    // The directory is still recoverable (old checkpoint + unbroken WAL
    // chain), but a failed snapshot write says the disk is unwell:
    // stop acknowledging updates.
    write_status_ = saved;
    return saved;
  }
  checkpoint_gen_ = next;
  // Retention window as in RotateCheckpoint: the new generation plus
  // the previous one.  Best-effort.
  StatusOr<std::vector<std::string>> names = env_->ListDir(dir_);
  if (names.ok()) {
    const uint64_t keep_from = next - 1;
    for (const std::string& name : *names) {
      uint64_t gen = 0;
      if ((ParseGenName(name, "ckpt-", ".pmidb", &gen) ||
           ParseGenName(name, "wal-", ".log", &gen)) &&
          gen < keep_from) {
        env_->RemoveFile(JoinPath(dir_, name));
      }
    }
  }
  return OkStatus();
}

StatusOr<MetricDB> MetricDB::CreateDurable(const MetricDBConfig& config,
                                           Dataset data,
                                           const std::string& dir,
                                           const DurabilityOptions& dopts) {
  PMI_ASSIGN_OR_RETURN(MetricDB db, Create(config, std::move(data)));
  db.env_ = dopts.env != nullptr ? dopts.env : Env::Default();
  db.dopts_ = dopts;
  db.dir_ = dir;
  db.durable_ = true;
  db.checkpoint_gen_ = 0;
  PMI_RETURN_IF_ERROR(db.env_->CreateDir(dir));
  PMI_ASSIGN_OR_RETURN(std::unique_ptr<FileLock> dir_lock,
                       AcquireDirLock(db.env_, dir));
  // From here on the destructor releases the LOCK on every error path.
  db.cc_->dir_lock = std::move(dir_lock);
  PMI_RETURN_IF_ERROR(db.RotateCheckpoint());
  return db;
}

Status MetricDB::ReplayWalGenerations(Env* env, const std::string& dir,
                                      uint64_t first_gen) {
  uint64_t gen = first_gen;
  bool prior_tail_truncated = false;
  while (true) {
    if (!env->FileExists(JoinPath(dir, WalName(gen)))) {
      if (env->FileExists(JoinPath(dir, WalName(gen + 1)))) {
        // A later log without this one: the history has a hole (e.g. a
        // generation pruned beyond the fallback window) -- replaying
        // around it would serve a non-prefix state.
        return DataLossError("WAL generation " + std::to_string(gen) +
                             " is missing but generation " +
                             std::to_string(gen + 1) + " exists");
      }
      break;
    }
    if (prior_tail_truncated) {
      // Records were lost from the middle of the history: generation
      // gen-1 ended in a torn tail, yet a later generation exists.
      return DataLossError(
          "WAL generation " + std::to_string(gen - 1) +
          " lost its tail but generation " + std::to_string(gen) +
          " continues past it");
    }
    PMI_ASSIGN_OR_RETURN(
        WalReplay replay,
        ReadWalFile(env, JoinPath(dir, WalName(gen)), seq_ + 1));
    for (const WalRecord& record : replay.records) {
      if (record.id >= live_.size()) {
        return DataLossError("WAL record names object " +
                             std::to_string(record.id) +
                             ", which the checkpoint does not contain");
      }
      const bool is_live = live_[record.id] != 0;
      if ((record.op == WalOp::kInsert) == is_live) {
        return DataLossError(
            "WAL record " + std::to_string(record.seq) +
            " is inconsistent with the recovered liveness of object " +
            std::to_string(record.id));
      }
      ApplyToIndex(UpdateOp{record.op, record.id});
    }
    prior_tail_truncated = replay.truncated_tail;
    if (replay.truncated_tail &&
        !env->FileExists(JoinPath(dir, WalName(gen + 1)))) {
      // Torn tail on the LAST generation: the damaged record cannot
      // have been acknowledged past a completed sync, and no later
      // generation continues over it -- so scrub the debris now.  This
      // generation then presents a clean tail when it is replayed again
      // as a fallback after a newer checkpoint goes bad; without the
      // repair that replay would see a lost tail under a continuing
      // generation and have to declare an (actually false) mid-chain
      // hole.  Mid-chain debris keeps the conservative kDataLoss above.
      PMI_RETURN_IF_ERROR(
          env->TruncateFile(JoinPath(dir, WalName(gen)), replay.valid_bytes));
      prior_tail_truncated = false;
    }
    ++gen;
  }
  return OkStatus();
}

StatusOr<MetricDB> MetricDB::OpenDurable(const std::string& dir,
                                         const DurabilityOptions& dopts) {
  Env* env = dopts.env != nullptr ? dopts.env : Env::Default();
  PMI_ASSIGN_OR_RETURN(std::unique_ptr<FileLock> dir_lock,
                       AcquireDirLock(env, dir));
  // Until a database object owns the lock, this guard releases it on
  // every error path out of recovery.
  struct LockRelease {
    Env* env;
    std::string dir;
    std::unique_ptr<FileLock> lock;
    ~LockRelease() {
      if (lock != nullptr) {
        UnregisterDirLock(dir);
        env->RemoveFile(JoinPath(dir, kLockFileName));
        lock.reset();  // releases the kernel lock
      }
    }
  } lock_release{env, dir, std::move(dir_lock)};

  PMI_ASSIGN_OR_RETURN(std::vector<std::string> names, env->ListDir(dir));
  std::vector<uint64_t> ckpt_gens;
  uint64_t max_gen = 0;
  for (const std::string& name : names) {
    uint64_t gen = 0;
    if (ParseGenName(name, "ckpt-", ".pmidb", &gen)) {
      ckpt_gens.push_back(gen);
      max_gen = std::max(max_gen, gen);
    } else if (ParseGenName(name, "wal-", ".log", &gen)) {
      max_gen = std::max(max_gen, gen);
    }
  }
  if (ckpt_gens.empty()) {
    return NotFoundError("\"" + dir + "\" holds no MetricDB checkpoint");
  }
  std::sort(ckpt_gens.begin(), ckpt_gens.end(), std::greater<>());

  // Newest checkpoint first; on any corruption fall back to the next
  // older one (whose WAL chain independently re-derives the history).
  Status last_err;
  for (uint64_t gen : ckpt_gens) {
    StatusOr<std::string> payload =
        ReadSnapshotFile(JoinPath(dir, CkptName(gen)), env);
    if (!payload.ok()) {
      last_err = payload.status();
      continue;
    }
    StatusOr<MetricDB> opened = FromPayload(*payload);
    if (!opened.ok()) {
      last_err = opened.status();
      continue;
    }
    MetricDB db = std::move(*opened);
    Status replayed = db.ReplayWalGenerations(env, dir, gen);
    if (!replayed.ok()) {
      last_err = replayed;
      continue;
    }
    db.env_ = env;
    db.dopts_ = dopts;
    db.dir_ = dir;
    db.durable_ = true;
    // Start past every generation ever seen, so a corrupt newer
    // checkpoint is never overwritten (it stays around for forensics
    // until the retention window passes it by).
    db.checkpoint_gen_ = max_gen;
    // Recovery re-checkpoints: the recovered state becomes durable on
    // its own, and torn WAL debris drops out of the replay path.
    PMI_RETURN_IF_ERROR(db.RotateCheckpoint());
    // Versioning starts only now that replay and re-checkpointing have
    // settled the state the initial version must reflect.
    db.InitVersioning();
    db.cc_->dir_lock = std::move(lock_release.lock);
    return db;
  }
  return last_err;
}

}  // namespace pmi
