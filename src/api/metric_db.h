// MetricDB -- the stable public facade over the survey harness.
//
// The inner MetricIndex API is built for the paper's equal-footing
// experiments: it borrows the dataset, metric, and pivots from the
// caller, aborts on programmer error, and reports results through
// out-params.  That contract is exactly right for benchmarks and exactly
// wrong for a service: callers must hand-manage four lifetimes, cannot
// recover from bad input, and must rebuild every index on process start.
//
// MetricDB closes that gap without touching the harness:
//   * it OWNS its Dataset, Metric, PivotSet, and MetricIndex -- build one
//     from a config plus a dataset and the dangling-reference footgun is
//     gone;
//   * every entry point returns Status / StatusOr instead of aborting,
//     with options validated up front (ValidateOptions, TryMakeIndex);
//   * queries go through one descriptor pair -- QueryRequest in,
//     QueryResult (by value) out -- with batches fanning out over the
//     parallel batch engine;
//   * Save/Open persist the whole database as one versioned snapshot
//     file (src/api/snapshot.h), so indexes that implement persistence
//     restore with zero distance computations.
//
// Like every MetricIndex operation, MetricDB is externally synchronized:
// one operation at a time per instance (concurrency lives inside batch
// queries).  Instances of distinct databases are fully independent.

#ifndef PMI_API_METRIC_DB_H_
#define PMI_API_METRIC_DB_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/core/dataset.h"
#include "src/core/index.h"
#include "src/core/metric.h"
#include "src/core/pivots.h"
#include "src/core/status.h"
#include "src/storage/env.h"
#include "src/storage/wal.h"

namespace pmi {

/// Build recipe for a MetricDB.  Plain fields plus chainable setters:
///
///   MetricDB::Create(MetricDBConfig()
///                        .WithMetric("L2")
///                        .WithIndex("MVPT")
///                        .WithPivots(5),
///                    std::move(dataset));
struct MetricDBConfig {
  /// Metric name: "L1", "L2", "Linf" (vector datasets) or "edit"
  /// (string datasets).
  std::string metric_name = "L2";
  /// Per-coordinate domain width (vector metrics) or maximum string
  /// length (edit).  0 = derive from the dataset at build time -- a
  /// coordinate scan, no distance computations.
  double metric_param = 0;
  /// Index display name as known to the registry ("LAESA", "EPT*",
  /// "MVPT", "SPB-tree", ..., or "LinearScan" for the brute-force
  /// baseline).
  std::string index_name = "MVPT";
  /// Shared pivots: how many and how to pick them ("hfi" -- the paper's
  /// shared strategy -- or "hf" or "random").
  uint32_t pivot_count = 5;
  std::string pivot_method = "hfi";
  /// When set, this exact pivot set is used (copied -- a PivotSet owns
  /// its objects) and pivot_count/pivot_method are ignored.  Lets
  /// several databases over the same data share one selection pass, and
  /// pivot-free baselines (LinearScan) skip selection entirely.
  std::optional<PivotSet> pivot_set;
  IndexOptions options;

  MetricDBConfig& WithMetric(std::string name, double param = 0) {
    metric_name = std::move(name);
    metric_param = param;
    return *this;
  }
  MetricDBConfig& WithIndex(std::string name) {
    index_name = std::move(name);
    return *this;
  }
  MetricDBConfig& WithPivots(uint32_t count) {
    pivot_count = count;
    return *this;
  }
  MetricDBConfig& WithPivotMethod(std::string method) {
    pivot_method = std::move(method);
    return *this;
  }
  MetricDBConfig& WithPivotSet(PivotSet set) {
    pivot_set = std::move(set);
    return *this;
  }
  MetricDBConfig& WithOptions(const IndexOptions& o) {
    options = o;
    return *this;
  }
};

/// What a query asks for.  One descriptor covers single and batch,
/// range and kNN -- facade callers never touch out-param pairs.
enum class QueryType { kRange, kKnn };

struct QueryRequest {
  QueryType type = QueryType::kRange;
  /// Range queries: the search radius (>= 0, finite).
  double radius = 0;
  /// kNN queries: the neighbor count (>= 1).
  size_t k = 0;
  /// The query objects; views must stay valid for the duration of the
  /// Query call.  An empty batch is a valid no-op.
  std::vector<ObjectView> batch;

  static QueryRequest Range(const ObjectView& q, double radius) {
    QueryRequest r;
    r.type = QueryType::kRange;
    r.radius = radius;
    r.batch = {q};
    return r;
  }
  static QueryRequest RangeBatch(std::vector<ObjectView> qs, double radius) {
    QueryRequest r;
    r.type = QueryType::kRange;
    r.radius = radius;
    r.batch = std::move(qs);
    return r;
  }
  static QueryRequest Knn(const ObjectView& q, size_t k) {
    QueryRequest r;
    r.type = QueryType::kKnn;
    r.k = k;
    r.batch = {q};
    return r;
  }
  static QueryRequest KnnBatch(std::vector<ObjectView> qs, size_t k) {
    QueryRequest r;
    r.type = QueryType::kKnn;
    r.k = k;
    r.batch = std::move(qs);
    return r;
  }
};

/// Everything a query returns, by value.  ids[i] / neighbors[i] answers
/// batch[i]; only the member matching the request type is populated.
/// `stats` covers the whole batch (seconds is wall clock, the QPS
/// denominator).
struct QueryResult {
  std::vector<std::vector<ObjectId>> ids;        // kRange
  std::vector<std::vector<Neighbor>> neighbors;  // kKnn
  OpStats stats;
};

/// One update: re-insert a (previously removed) dataset object, or
/// remove a live one -- the update operation of the paper's Section
/// 6.3, surfaced on the facade so it can be validated, logged, and
/// recovered.
struct UpdateOp {
  WalOp op = WalOp::kInsert;
  ObjectId id = 0;

  static UpdateOp Insert(ObjectId id) { return {WalOp::kInsert, id}; }
  static UpdateOp Remove(ObjectId id) { return {WalOp::kRemove, id}; }
};

/// Durability knobs for CreateDurable/OpenDurable.
struct DurabilityOptions {
  /// When acknowledged updates reach stable storage (see
  /// src/storage/wal.h for the exact guarantee per mode).
  SyncMode sync_mode = SyncMode::kAlways;
  /// kInterval only: fsync every this many commits.
  uint32_t sync_interval_commits = 32;
  /// I/O seam; nullptr = Env::Default().  Must outlive the database.
  Env* env = nullptr;

  /// Reads PMI_WAL_SYNC ("always" | "interval" | "never") and
  /// PMI_WAL_SYNC_INTERVAL; unset or unparsable values keep the
  /// defaults.
  static DurabilityOptions FromEnv();
};

/// An owned, persistable metric database: dataset + metric + pivots +
/// index behind one handle.
class MetricDB {
 public:
  /// Builds a database from scratch: derives the metric, selects pivots,
  /// constructs and builds the index.  `data` is consumed.  Errors:
  /// kInvalidArgument (empty dataset, bad options, metric/dataset kind
  /// mismatch, pivot recipe), kNotFound (unknown metric or index name),
  /// kFailedPrecondition (index needs a discrete metric).
  static StatusOr<MetricDB> Create(const MetricDBConfig& config,
                                   Dataset data);

  /// Restores a database from a Save()d snapshot.  Indexes implementing
  /// persistence restore without recomputing distances (see
  /// build_stats()); the rest rebuild from the persisted dataset.
  static StatusOr<MetricDB> Open(const std::string& path);

  /// Persists the database (config, dataset, pivots, index state) to one
  /// snapshot file.  kUnimplemented index persistence degrades to a
  /// "rebuild on open" snapshot, never to an error.  The file is
  /// crash-durable when Save returns OK: temp file fsynced before the
  /// atomic rename, parent directory fsynced after.
  Status Save(const std::string& path) const;

  // -- durability ---------------------------------------------------------

  /// Create() plus a durability home: `dir` receives a checkpoint
  /// snapshot and a write-ahead log, and from then on every
  /// acknowledged update survives a crash (at the DurabilityOptions
  /// sync_mode's guarantee level).
  static StatusOr<MetricDB> CreateDurable(const MetricDBConfig& config,
                                          Dataset data,
                                          const std::string& dir,
                                          const DurabilityOptions& dopts = {});

  /// Crash recovery: loads the newest valid checkpoint in `dir` (falling
  /// back to the previous one if the newest is corrupt), replays the WAL
  /// tail on top of it -- truncating torn trailing records, refusing
  /// sequence gaps as kDataLoss -- and re-checkpoints so the recovered
  /// state is itself durable.  Recovers to exactly the last acknowledged
  /// update under SyncMode::kAlways; under kInterval/kNever to some
  /// valid prefix of the update history, never to a non-prefix state.
  static StatusOr<MetricDB> OpenDurable(const std::string& dir,
                                        const DurabilityOptions& dopts = {});

  /// Re-inserts dataset object `id` (must be removed) / removes a live
  /// one.  On a durable database the op is WAL-logged before it is
  /// applied; OK means it is recoverable per the sync mode.  Errors:
  /// kInvalidArgument (id out of range), kFailedPrecondition (liveness
  /// mismatch, or the database went read-only after an I/O fault),
  /// kUnavailable (the logging I/O itself failed -- the op is NOT
  /// applied and the database is read-only from then on).
  Status Insert(ObjectId id) { return Apply({UpdateOp::Insert(id)}); }
  Status Remove(ObjectId id) { return Apply({UpdateOp::Remove(id)}); }

  /// Group commit: validates and applies `ops` as one WAL commit (one
  /// write + at most one fsync for the whole batch).  All-or-nothing:
  /// on any validation or logging error no op is applied.
  Status Apply(const std::vector<UpdateOp>& ops);

  /// Durable databases only: writes a fresh checkpoint of the current
  /// state, starts a new WAL generation, and prunes generations older
  /// than the fallback window (previous checkpoint + its log).
  Status Checkpoint();

  /// True when this database was opened with CreateDurable/OpenDurable.
  bool durable() const { return durable_; }

  /// Sequence number of the last applied update (0 = none yet).  After
  /// OpenDurable this is exactly the prefix of update history the
  /// recovered state contains.
  uint64_t last_sequence() const { return seq_; }

  /// Liveness of dataset object `id` under the applied update history.
  bool alive(ObjectId id) const {
    return id < live_.size() && live_[id] != 0;
  }

  /// Non-OK once a write-path I/O fault put the database in read-only
  /// mode (queries still work; updates are refused with this status).
  const Status& write_status() const { return write_status_; }

  /// Answers `request`; batches fan out across the thread pool when the
  /// index supports concurrent queries.
  StatusOr<QueryResult> Query(const QueryRequest& request) const;

  /// Single-query conveniences.
  StatusOr<QueryResult> RangeQuery(const ObjectView& q, double radius) const {
    return Query(QueryRequest::Range(q, radius));
  }
  StatusOr<QueryResult> KnnQuery(const ObjectView& q, size_t k) const {
    return Query(QueryRequest::Knn(q, k));
  }

  const MetricDBConfig& config() const { return config_; }
  const Dataset& dataset() const { return *data_; }
  const Metric& metric() const { return *metric_; }
  const PivotSet& pivots() const { return *pivots_; }
  const MetricIndex& index() const { return *index_; }

  /// Cost of Create's index build -- or of Open (zero distance
  /// computations when the index restored from persisted state).
  const OpStats& build_stats() const { return build_stats_; }

  /// True when this database was restored from persisted index state
  /// rather than (re)built.
  bool restored_from_snapshot() const { return restored_; }

  MetricDB(MetricDB&&) = default;
  MetricDB& operator=(MetricDB&&) = default;
  MetricDB(const MetricDB&) = delete;
  MetricDB& operator=(const MetricDB&) = delete;

 private:
  MetricDB() = default;

  Status ValidateRequest(const QueryRequest& request) const;

  /// Serializes the full database state (including the liveness bitmap
  /// and last sequence number) into the snapshot payload.
  Status ComposePayload(ByteSink* payload) const;

  /// Rebuilds a database from a snapshot payload (shared by Open and
  /// checkpoint recovery).
  static StatusOr<MetricDB> FromPayload(const std::string& payload);

  /// Save through a specific Env (durable temp-write + rename + dir
  /// sync).
  Status SaveTo(const std::string& path, Env* env) const;

  /// Applies one already-validated, already-logged update to the index
  /// and the liveness/sequence bookkeeping.
  void ApplyToIndex(const UpdateOp& op);

  /// Replays wal-<g> for g = first_gen, first_gen+1, ... on top of the
  /// current state; kDataLoss on sequence gaps or liveness-inconsistent
  /// records.
  Status ReplayWalGenerations(Env* env, const std::string& dir,
                              uint64_t first_gen);

  /// Writes ckpt-(gen+1), opens wal-(gen+1), prunes generation gen-1.
  Status RotateCheckpoint();

  MetricDBConfig config_;
  // Metric parameters as actually instantiated (param derived from the
  // data when config_.metric_param == 0); persisted so Open rebuilds the
  // exact same metric without re-deriving.
  double metric_param_used_ = 0;
  bool metric_discrete_ = false;
  // unique_ptrs keep the addresses the index borrowed stable across
  // moves of the facade object.
  std::unique_ptr<Dataset> data_;
  std::unique_ptr<Metric> metric_;
  std::unique_ptr<PivotSet> pivots_;
  std::unique_ptr<MetricIndex> index_;
  OpStats build_stats_;
  bool restored_ = false;

  // -- update/durability state --------------------------------------------
  // live_ mirrors the index's membership (1 = present); seq_ numbers the
  // applied update history.  Maintained on every database; persisted in
  // the snapshot payload tail so recovery can validate WAL replay.
  std::vector<uint8_t> live_;
  uint64_t seq_ = 0;
  Status write_status_;

  // Durable databases only.
  bool durable_ = false;
  std::string dir_;
  Env* env_ = nullptr;  // borrowed; outlives the database
  DurabilityOptions dopts_;
  uint64_t checkpoint_gen_ = 0;
  std::unique_ptr<WalWriter> wal_;
};

}  // namespace pmi

#endif  // PMI_API_METRIC_DB_H_
