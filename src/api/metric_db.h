// MetricDB -- the stable public facade over the survey harness.
//
// The inner MetricIndex API is built for the paper's equal-footing
// experiments: it borrows the dataset, metric, and pivots from the
// caller, aborts on programmer error, and reports results through
// out-params.  That contract is exactly right for benchmarks and exactly
// wrong for a service: callers must hand-manage four lifetimes, cannot
// recover from bad input, and must rebuild every index on process start.
//
// MetricDB closes that gap without touching the harness:
//   * it OWNS its Dataset, Metric, PivotSet, and MetricIndex -- build one
//     from a config plus a dataset and the dangling-reference footgun is
//     gone;
//   * every entry point returns Status / StatusOr instead of aborting,
//     with options validated up front (ValidateOptions, TryMakeIndex);
//   * queries go through one descriptor pair -- QueryRequest in,
//     QueryResult (by value) out -- with batches fanning out over the
//     parallel batch engine;
//   * Save/Open persist the whole database as one versioned snapshot
//     file (src/api/snapshot.h), so indexes that implement persistence
//     restore with zero distance computations.
//
// Concurrency model (see README "Concurrency model"): when the index
// supports shadow-copy cloning and concurrent queries (the table indexes
// -- LinearScan, LAESA, EPT, EPT*, FQA), the facade runs an
// epoch-versioned read/write core.  Readers call Query/GetReadView from
// any number of threads, lock-free on the hot path: each query pins the
// currently published immutable TableVersion through an epoch slot and
// runs the counter-free *Shared batch engine against it.  The single
// writer (Apply/Insert/Remove, serialized on an internal writer lock)
// clones the index -- copy-on-write at 256-row pivot-table-block
// granularity -- applies the batch to the clone, and publishes it
// atomically; superseded versions are reclaimed once the last pinned
// reader drains.  Checkpoint snapshots a pinned version concurrently
// with both readers and the writer.  A database whose write path went
// read-only (WAL fault) keeps serving reads from the last published
// version.  Indexes without clone support keep the legacy serialized
// behavior (operations mutually exclude on the writer lock).

#ifndef PMI_API_METRIC_DB_H_
#define PMI_API_METRIC_DB_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/core/dataset.h"
#include "src/core/index.h"
#include "src/core/metric.h"
#include "src/core/pivots.h"
#include "src/core/status.h"
#include "src/core/version.h"
#include "src/storage/env.h"
#include "src/storage/wal.h"

namespace pmi {

/// Build recipe for a MetricDB.  Plain fields plus chainable setters:
///
///   MetricDB::Create(MetricDBConfig()
///                        .WithMetric("L2")
///                        .WithIndex("MVPT")
///                        .WithPivots(5),
///                    std::move(dataset));
struct MetricDBConfig {
  /// Metric name: "L1", "L2", "Linf" (vector datasets) or "edit"
  /// (string datasets).
  std::string metric_name = "L2";
  /// Per-coordinate domain width (vector metrics) or maximum string
  /// length (edit).  0 = derive from the dataset at build time -- a
  /// coordinate scan, no distance computations.
  double metric_param = 0;
  /// Index display name as known to the registry ("LAESA", "EPT*",
  /// "MVPT", "SPB-tree", ..., or "LinearScan" for the brute-force
  /// baseline).
  std::string index_name = "MVPT";
  /// Shared pivots: how many and how to pick them ("hfi" -- the paper's
  /// shared strategy -- or "hf" or "random").
  uint32_t pivot_count = 5;
  std::string pivot_method = "hfi";
  /// When set, this exact pivot set is used (copied -- a PivotSet owns
  /// its objects) and pivot_count/pivot_method are ignored.  Lets
  /// several databases over the same data share one selection pass, and
  /// pivot-free baselines (LinearScan) skip selection entirely.
  std::optional<PivotSet> pivot_set;
  IndexOptions options;

  MetricDBConfig& WithMetric(std::string name, double param = 0) {
    metric_name = std::move(name);
    metric_param = param;
    return *this;
  }
  MetricDBConfig& WithIndex(std::string name) {
    index_name = std::move(name);
    return *this;
  }
  MetricDBConfig& WithPivots(uint32_t count) {
    pivot_count = count;
    return *this;
  }
  MetricDBConfig& WithPivotMethod(std::string method) {
    pivot_method = std::move(method);
    return *this;
  }
  MetricDBConfig& WithPivotSet(PivotSet set) {
    pivot_set = std::move(set);
    return *this;
  }
  MetricDBConfig& WithOptions(const IndexOptions& o) {
    options = o;
    return *this;
  }
};

/// Resolves the metric parameter Create would instantiate for
/// (metric_name, data): an explicit positive `param` passes through
/// unchanged; 0 derives it from the data (the same coordinate scan /
/// max-string-length pass Create runs -- no distance computations).
/// The sharded service (src/service/) pins ONE parameter derived from
/// the full dataset across every shard of a partition, so per-shard
/// metrics -- including FQA's max_distance-based quantization step --
/// match the unsharded oracle exactly.
StatusOr<double> ResolveMetricParam(const std::string& metric_name,
                                    const Dataset& data, double param = 0);

/// What a query asks for.  One descriptor covers single and batch,
/// range and kNN -- facade callers never touch out-param pairs.
enum class QueryType { kRange, kKnn };

struct QueryRequest {
  QueryType type = QueryType::kRange;
  /// Range queries: the search radius (>= 0, finite), applied to every
  /// batch element unless `radii` is set.
  double radius = 0;
  /// kNN queries: the neighbor count (>= 1), applied to every batch
  /// element unless `ks` is set.
  size_t k = 0;
  /// The query objects; views must stay valid for the duration of the
  /// Query call.  An empty batch is a valid no-op.
  std::vector<ObjectView> batch;
  /// Per-query descriptors.  When non-empty, radii[i] / ks[i] answers
  /// batch[i] and the uniform radius / k above is ignored; the size must
  /// match the batch and every element is validated like its uniform
  /// counterpart.  A range request with `ks` set (or a kNN request with
  /// `radii`) is rejected as kInvalidArgument.
  std::vector<double> radii;
  std::vector<size_t> ks;

  static QueryRequest Range(const ObjectView& q, double radius) {
    QueryRequest r;
    r.type = QueryType::kRange;
    r.radius = radius;
    r.batch = {q};
    return r;
  }
  static QueryRequest RangeBatch(std::vector<ObjectView> qs, double radius) {
    QueryRequest r;
    r.type = QueryType::kRange;
    r.radius = radius;
    r.batch = std::move(qs);
    return r;
  }
  /// Batch with one radius per query.
  static QueryRequest RangeBatch(std::vector<ObjectView> qs,
                                 std::vector<double> radii) {
    QueryRequest r;
    r.type = QueryType::kRange;
    r.batch = std::move(qs);
    r.radii = std::move(radii);
    return r;
  }
  static QueryRequest Knn(const ObjectView& q, size_t k) {
    QueryRequest r;
    r.type = QueryType::kKnn;
    r.k = k;
    r.batch = {q};
    return r;
  }
  static QueryRequest KnnBatch(std::vector<ObjectView> qs, size_t k) {
    QueryRequest r;
    r.type = QueryType::kKnn;
    r.k = k;
    r.batch = std::move(qs);
    return r;
  }
  /// Batch with one neighbor count per query.
  static QueryRequest KnnBatch(std::vector<ObjectView> qs,
                               std::vector<size_t> ks) {
    QueryRequest r;
    r.type = QueryType::kKnn;
    r.batch = std::move(qs);
    r.ks = std::move(ks);
    return r;
  }
};

/// Everything a query returns, by value.  ids[i] / neighbors[i] answers
/// batch[i]; only the member matching the request type is populated.
/// `stats` covers the whole batch (seconds is wall clock, the QPS
/// denominator).
struct QueryResult {
  std::vector<std::vector<ObjectId>> ids;        // kRange
  std::vector<std::vector<Neighbor>> neighbors;  // kKnn
  OpStats stats;
};

/// One update: re-insert a (previously removed) dataset object, or
/// remove a live one -- the update operation of the paper's Section
/// 6.3, surfaced on the facade so it can be validated, logged, and
/// recovered.
struct UpdateOp {
  WalOp op = WalOp::kInsert;
  ObjectId id = 0;

  static UpdateOp Insert(ObjectId id) { return {WalOp::kInsert, id}; }
  static UpdateOp Remove(ObjectId id) { return {WalOp::kRemove, id}; }
};

/// Typed failure of MetricDB::ApplyOptions::expected_sequence:
/// kFailedPrecondition with a machine-recognizable message recording
/// both sequences.  Nothing was logged or applied.
Status SequenceFenceError(uint64_t at, uint64_t expected);
/// True iff `s` came from SequenceFenceError.
bool IsSequenceFenceMismatch(const Status& s);

/// Durability knobs for CreateDurable/OpenDurable.
struct DurabilityOptions {
  /// When acknowledged updates reach stable storage (see
  /// src/storage/wal.h for the exact guarantee per mode).
  SyncMode sync_mode = SyncMode::kAlways;
  /// kInterval only: fsync every this many commits.
  uint32_t sync_interval_commits = 32;
  /// I/O seam; nullptr = Env::Default().  Must outlive the database.
  Env* env = nullptr;

  /// Reads PMI_WAL_SYNC ("always" | "interval" | "never") and
  /// PMI_WAL_SYNC_INTERVAL; unset or unparsable values keep the
  /// defaults.
  static DurabilityOptions FromEnv();
};

/// An owned, persistable metric database: dataset + metric + pivots +
/// index behind one handle.
class MetricDB {
 public:
  /// Builds a database from scratch: derives the metric, selects pivots,
  /// constructs and builds the index.  `data` is consumed.  Errors:
  /// kInvalidArgument (empty dataset, bad options, metric/dataset kind
  /// mismatch, pivot recipe), kNotFound (unknown metric or index name),
  /// kFailedPrecondition (index needs a discrete metric).
  static StatusOr<MetricDB> Create(const MetricDBConfig& config,
                                   Dataset data);

  /// Restores a database from a Save()d snapshot.  Indexes implementing
  /// persistence restore without recomputing distances (see
  /// build_stats()); the rest rebuild from the persisted dataset.
  static StatusOr<MetricDB> Open(const std::string& path);

  /// Persists the database (config, dataset, pivots, index state) to one
  /// snapshot file.  kUnimplemented index persistence degrades to a
  /// "rebuild on open" snapshot, never to an error.  The file is
  /// crash-durable when Save returns OK: temp file fsynced before the
  /// atomic rename, parent directory fsynced after.
  Status Save(const std::string& path) const;

  // -- durability ---------------------------------------------------------

  /// Create() plus a durability home: `dir` receives a checkpoint
  /// snapshot and a write-ahead log, and from then on every
  /// acknowledged update survives a crash (at the DurabilityOptions
  /// sync_mode's guarantee level).
  static StatusOr<MetricDB> CreateDurable(const MetricDBConfig& config,
                                          Dataset data,
                                          const std::string& dir,
                                          const DurabilityOptions& dopts = {});

  /// Crash recovery: loads the newest valid checkpoint in `dir` (falling
  /// back to the previous one if the newest is corrupt), replays the WAL
  /// tail on top of it -- truncating torn trailing records, refusing
  /// sequence gaps as kDataLoss -- and re-checkpoints so the recovered
  /// state is itself durable.  Recovers to exactly the last acknowledged
  /// update under SyncMode::kAlways; under kInterval/kNever to some
  /// valid prefix of the update history, never to a non-prefix state.
  static StatusOr<MetricDB> OpenDurable(const std::string& dir,
                                        const DurabilityOptions& dopts = {});

  /// Re-inserts dataset object `id` (must be removed) / removes a live
  /// one.  On a durable database the op is WAL-logged before it is
  /// applied; OK means it is recoverable per the sync mode.  Errors:
  /// kInvalidArgument (id out of range), kFailedPrecondition (liveness
  /// mismatch, or the database went read-only after an I/O fault),
  /// kUnavailable (the logging I/O itself failed -- the op is NOT
  /// applied and the database is read-only from then on).
  Status Insert(ObjectId id) { return Apply({UpdateOp::Insert(id)}); }
  Status Remove(ObjectId id) { return Apply({UpdateOp::Remove(id)}); }

  /// Group commit: validates and applies `ops` as one WAL commit (one
  /// write + at most one fsync for the whole batch).  All-or-nothing:
  /// on any validation or logging error no op is applied.
  Status Apply(const std::vector<UpdateOp>& ops);

  /// Optional preconditions for Apply.
  struct ApplyOptions {
    /// Sequence fence: commit only if last_sequence() still equals this
    /// value (checked inside the writer lock, before validation or
    /// logging).  A mismatch returns SequenceFenceError and applies
    /// nothing.  This is the idempotence primitive for retried batches:
    /// a batch whose WAL record survived a "failed" commit and was
    /// replayed by recovery has advanced the sequence, so a fenced
    /// retry refuses instead of double-applying (see service/retry.h).
    std::optional<uint64_t> expected_sequence;
  };

  /// Apply with preconditions; Apply(ops) == Apply(ops, {}).
  Status Apply(const std::vector<UpdateOp>& ops, const ApplyOptions& aopts);

  /// Durable databases only: writes a fresh checkpoint of the current
  /// state, starts a new WAL generation, and prunes generations older
  /// than the fallback window (previous checkpoint + its log).  On an
  /// epoch-versioned database the snapshot serializes a pinned version
  /// OUTSIDE the writer lock, so updates and queries proceed while the
  /// checkpoint file is being written.
  Status Checkpoint();

  /// Shuts the database down: refuses new queries and updates, syncs and
  /// closes the WAL (skipped once write_status() is non-OK), and
  /// releases the directory LOCK file.  Idempotent; in-flight queries
  /// holding a pinned version finish normally.  The destructor releases
  /// the LOCK too, so Close() is only needed when the final WAL sync
  /// outcome or early lock release matters.  Close() does NOT wait for
  /// concurrent calls: it only makes later entry attempts fail fast.
  Status Close();

  /// Destruction does not synchronize with concurrent calls: like any
  /// C++ object, the destructor may only run once every thread's
  /// Query/GetReadView/Apply/Checkpoint call on this instance has
  /// RETURNED.  Close() is not enough -- a thread already past the
  /// closed check but not yet holding its version pin would touch freed
  /// state -- so quiesce (join) reader threads before dropping the
  /// database.  Readers that already pinned are safe: the destructor
  /// drains them, and ReadViews co-own their pinned version
  /// independently of the facade, so they may outlive it.
  ~MetricDB();

  /// True when this database was opened with CreateDurable/OpenDurable.
  bool durable() const { return durable_; }

  /// Sequence number of the last applied update (0 = none yet).  After
  /// OpenDurable this is exactly the prefix of update history the
  /// recovered state contains.  Writer-side view: under concurrent
  /// updates, read it from the writer thread or from a ReadView.
  uint64_t last_sequence() const { return seq_; }

  /// Liveness of dataset object `id` under the applied update history.
  /// Writer-side view, like last_sequence().
  bool alive(ObjectId id) const {
    return id < live_.size() && live_[id] != 0;
  }

  /// Non-OK once a write-path I/O fault put the database in read-only
  /// mode (queries still work; updates are refused with this status).
  const Status& write_status() const { return write_status_; }

  /// Answers `request`; batches fan out across the thread pool when the
  /// index supports concurrent queries.  On an epoch-versioned database
  /// this is safe to call from any number of threads concurrently with
  /// Apply/Checkpoint; each call answers against one consistent pinned
  /// version.
  StatusOr<QueryResult> Query(const QueryRequest& request) const;

  /// A consistent snapshot of the database for multi-query read
  /// transactions: every Query through the view -- and its alive()/
  /// sequence() -- answers against the same pinned version, no matter
  /// how many updates the writer publishes meanwhile.  Copyable and
  /// cheap; the underlying version stays alive until the last view (and
  /// pinned reader) drops.  kFailedPrecondition when the index does not
  /// support versioned reads or the database is closed.
  class ReadView {
   public:
    /// Sequence number of the pinned version (same meaning as
    /// MetricDB::last_sequence()).
    uint64_t sequence() const { return version_->sequence; }

    /// Liveness of `id` at the pinned version.
    bool alive(ObjectId id) const {
      return id < version_->live.size() && version_->live[id] != 0;
    }

    /// Same contract as MetricDB::Query, answered at the pinned version.
    StatusOr<QueryResult> Query(const QueryRequest& request) const;

   private:
    friend class MetricDB;
    explicit ReadView(std::shared_ptr<const TableVersion> version)
        : version_(std::move(version)) {}

    std::shared_ptr<const TableVersion> version_;
  };

  StatusOr<ReadView> GetReadView() const;

  /// Single-query conveniences.
  StatusOr<QueryResult> RangeQuery(const ObjectView& q, double radius) const {
    return Query(QueryRequest::Range(q, radius));
  }
  StatusOr<QueryResult> KnnQuery(const ObjectView& q, size_t k) const {
    return Query(QueryRequest::Knn(q, k));
  }

  const MetricDBConfig& config() const { return config_; }
  const Dataset& dataset() const { return *data_; }
  const Metric& metric() const { return *metric_; }
  const PivotSet& pivots() const { return *pivots_; }
  const MetricIndex& index() const { return *index_; }

  /// Cost of Create's index build -- or of Open (zero distance
  /// computations when the index restored from persisted state).
  const OpStats& build_stats() const { return build_stats_; }

  /// True when this database was restored from persisted index state
  /// rather than (re)built.
  bool restored_from_snapshot() const { return restored_; }

  MetricDB(MetricDB&&) = default;
  MetricDB& operator=(MetricDB&&) = default;
  MetricDB(const MetricDB&) = delete;
  MetricDB& operator=(const MetricDB&) = delete;

 private:
  MetricDB() = default;

  /// Validates `request` against dataset `data` (batch views, uniform
  /// and per-query descriptors).
  static Status ValidateRequest(const QueryRequest& request,
                                const Dataset& data);

  /// Answers an already-validated `request` against pinned version `v`
  /// with the counter-free *Shared batch engine.
  static QueryResult AnswerAtVersion(const TableVersion& v,
                                     const QueryRequest& request);

  /// True once the epoch-versioned read/write core is active (the index
  /// supports shadow-copy cloning and concurrent queries).
  bool versioned() const;

  /// Probes the index for clone support and, when present, publishes the
  /// initial version.  Called once the state is final: end of Create,
  /// end of OpenDurable (after WAL replay).
  void InitVersioning();

  /// Serializes database state (config, dataset, pivots, `index` state,
  /// `live` bitmap, `seq`) into the snapshot payload.  Parameterized so
  /// a checkpoint can serialize a pinned version while the live members
  /// move on.
  Status ComposePayload(const MetricIndex& index,
                        const std::vector<uint8_t>& live, uint64_t seq,
                        ByteSink* payload) const;

  /// Rebuilds a database from a snapshot payload (shared by Open and
  /// checkpoint recovery).
  static StatusOr<MetricDB> FromPayload(const std::string& payload);

  /// Save through a specific Env (durable temp-write + rename + dir
  /// sync).  Snapshots the currently published version on a versioned
  /// database, the live members otherwise.
  Status SaveTo(const std::string& path, Env* env) const;

  /// SaveTo for one explicit state triple.
  Status SaveStateTo(const MetricIndex& index,
                     const std::vector<uint8_t>& live, uint64_t seq,
                     const std::string& path, Env* env) const;

  /// Applies one already-validated, already-logged update to the index
  /// and the liveness/sequence bookkeeping.
  void ApplyToIndex(const UpdateOp& op);

  /// Replays wal-<g> for g = first_gen, first_gen+1, ... on top of the
  /// current state; kDataLoss on sequence gaps or liveness-inconsistent
  /// records.
  Status ReplayWalGenerations(Env* env, const std::string& dir,
                              uint64_t first_gen);

  /// Writes ckpt-(gen+1), opens wal-(gen+1), prunes generation gen-1.
  Status RotateCheckpoint();

  MetricDBConfig config_;
  // Metric parameters as actually instantiated (param derived from the
  // data when config_.metric_param == 0); persisted so Open rebuilds the
  // exact same metric without re-deriving.
  double metric_param_used_ = 0;
  bool metric_discrete_ = false;
  // shared_ptrs keep the addresses the index borrowed stable across
  // moves of the facade object AND let published TableVersions share
  // ownership, so a pinned reader outlives even the facade's members.
  std::shared_ptr<Dataset> data_;
  std::shared_ptr<Metric> metric_;
  std::shared_ptr<PivotSet> pivots_;
  // The writer's working index.  In versioned mode this exact object is
  // what the current TableVersion references; Apply never mutates it --
  // it clones, applies to the clone, publishes, and reseats this
  // pointer, so every published version stays immutable forever.
  std::shared_ptr<MetricIndex> index_;
  OpStats build_stats_;
  bool restored_ = false;

  // -- concurrency core ---------------------------------------------------
  // Heap-allocated so MetricDB stays movable (mutexes and atomics are
  // not).  Null only in a moved-from facade.
  struct Concurrency {
    /// Serializes the write path (Apply, checkpoint's WAL rotation,
    /// Close) and, in legacy non-versioned mode, queries too.
    std::mutex writer_mu;
    /// Serializes whole Checkpoint calls against each other without
    /// blocking the writer for the slow serialization phase.
    std::mutex checkpoint_mu;
    /// Epoch-versioned publication point; null in legacy mode.
    std::unique_ptr<VersionedTable> table;
    /// Flipped by Close(); checked (acquire) at every entry point.
    std::atomic<bool> closed{false};
    /// Held kernel advisory lock on dir_'s LOCK file; null when this
    /// instance does not own the directory.
    std::unique_ptr<FileLock> dir_lock;
  };
  std::unique_ptr<Concurrency> cc_ = std::make_unique<Concurrency>();

  // -- update/durability state --------------------------------------------
  // live_ mirrors the index's membership (1 = present); seq_ numbers the
  // applied update history.  Maintained on every database; persisted in
  // the snapshot payload tail so recovery can validate WAL replay.
  std::vector<uint8_t> live_;
  uint64_t seq_ = 0;
  Status write_status_;

  // Durable databases only.
  bool durable_ = false;
  std::string dir_;
  Env* env_ = nullptr;  // borrowed; outlives the database
  DurabilityOptions dopts_;
  uint64_t checkpoint_gen_ = 0;
  std::unique_ptr<WalWriter> wal_;
};

}  // namespace pmi

#endif  // PMI_API_METRIC_DB_H_
