#include "src/external/ept_disk.h"

#include <cmath>
#include <cstring>

#include "src/core/knn_heap.h"

namespace pmi {

void EptDisk::AppendRow(ObjectId id, const RafRef& ref, const uint32_t* pidx,
                        const double* pdist) {
  const uint32_t rpp = RowsPerPage();
  uint32_t page_idx = rows_ / rpp;
  uint32_t slot = rows_ % rpp;
  while (page_idx >= seq_->num_pages()) seq_->Allocate();
  PageHandle h = seq_->Write(page_idx, /*load=*/slot != 0);
  char* row = h.mutable_data() + size_t(slot) * RowBytes();
  std::memcpy(row, &id, 4);
  std::memcpy(row + 4, &ref.length, 4);
  std::memcpy(row + 8, &ref.offset, 8);
  for (uint32_t j = 0; j < l_; ++j) {
    std::memcpy(row + 16 + 12 * j, &pidx[j], 4);
    std::memcpy(row + 16 + 12 * j + 4, &pdist[j], 8);
  }
  ++rows_;
}

void EptDisk::BuildImpl() {
  l_ = std::max<uint32_t>(1, pivots_.size());
  file_ = std::make_unique<PagedFile>(options_.page_size, options_.cache_bytes,
                                      &counters_, options_.buffer_pool);
  seq_ = std::make_unique<PagedFile>(options_.page_size, options_.cache_bytes,
                                     &counters_, options_.buffer_pool);
  raf_ = std::make_unique<RecordFile>(file_.get());
  rows_ = 0;
  DistanceComputer d = dist();
  psa_.Build(data(), d, options_.ept_cp_scale, options_.ept_sample_size,
             options_.seed);
  std::vector<uint32_t> pidx(l_);
  std::vector<double> pdist(l_);
  std::string buf;
  for (ObjectId id = 0; id < data().size(); ++id) {
    buf.clear();
    data().SerializeObject(id, &buf);
    RafRef ref = raf_->Append(buf.data(), static_cast<uint32_t>(buf.size()));
    psa_.SelectForObject(data().view(id), d, l_, pidx.data(), pdist.data());
    AppendRow(id, ref, pidx.data(), pdist.data());
  }
  file_->Flush();
  seq_->Flush();
}

void EptDisk::RangeImpl(const ObjectView& q, double r,
                        std::vector<ObjectId>* out) const {
  DistanceComputer d = dist();
  std::vector<double> d_qp(psa_.pool().size());
  for (uint32_t c = 0; c < psa_.pool().size(); ++c) {
    d_qp[c] = d(q, psa_.pool().pivot(c));
  }
  const uint32_t rpp = RowsPerPage();
  std::vector<char> buf;
  for (uint32_t row = 0; row < rows_; ++row) {
    PageHandle h = seq_->Read(row / rpp);
    const char* p = h.data() + size_t(row % rpp) * RowBytes();
    ObjectId id;
    std::memcpy(&id, p, 4);
    if (id == kInvalidObjectId) continue;  // tombstone
    bool pruned = false;
    for (uint32_t j = 0; j < l_ && !pruned; ++j) {
      uint32_t pv;
      double dd;
      std::memcpy(&pv, p + 16 + 12 * j, 4);
      std::memcpy(&dd, p + 16 + 12 * j + 4, 8);
      pruned = std::fabs(dd - d_qp[pv]) > r;
    }
    if (pruned) continue;
    RafRef ref;
    std::memcpy(&ref.length, p + 4, 4);
    std::memcpy(&ref.offset, p + 8, 8);
    CheckOk(raf_->ReadRecord(ref, &buf), "EPT* RAF read");
    ObjectView obj =
        data().DeserializeObject(buf.data(), static_cast<uint32_t>(buf.size()));
    if (d.Bounded(q, obj, r) <= r) out->push_back(id);
  }
}

void EptDisk::KnnImpl(const ObjectView& q, size_t k,
                      std::vector<Neighbor>* out) const {
  DistanceComputer d = dist();
  std::vector<double> d_qp(psa_.pool().size());
  for (uint32_t c = 0; c < psa_.pool().size(); ++c) {
    d_qp[c] = d(q, psa_.pool().pivot(c));
  }
  const uint32_t rpp = RowsPerPage();
  std::vector<char> buf;
  KnnHeap heap(k);
  for (uint32_t row = 0; row < rows_; ++row) {
    PageHandle h = seq_->Read(row / rpp);
    const char* p = h.data() + size_t(row % rpp) * RowBytes();
    ObjectId id;
    std::memcpy(&id, p, 4);
    if (id == kInvalidObjectId) continue;
    double radius = heap.radius();
    bool pruned = false;
    for (uint32_t j = 0; j < l_ && !pruned; ++j) {
      uint32_t pv;
      double dd;
      std::memcpy(&pv, p + 16 + 12 * j, 4);
      std::memcpy(&dd, p + 16 + 12 * j + 4, 8);
      pruned = std::fabs(dd - d_qp[pv]) > radius;
    }
    if (pruned) continue;
    RafRef ref;
    std::memcpy(&ref.length, p + 4, 4);
    std::memcpy(&ref.offset, p + 8, 8);
    CheckOk(raf_->ReadRecord(ref, &buf), "EPT* RAF read");
    ObjectView obj =
        data().DeserializeObject(buf.data(), static_cast<uint32_t>(buf.size()));
    heap.Push(id, d.Bounded(q, obj, heap.radius()));
  }
  heap.TakeSorted(out);
}

void EptDisk::InsertImpl(ObjectId id) {
  DistanceComputer d = dist();
  std::string buf;
  data().SerializeObject(id, &buf);
  RafRef ref = raf_->Append(buf.data(), static_cast<uint32_t>(buf.size()));
  std::vector<uint32_t> pidx(l_);
  std::vector<double> pdist(l_);
  psa_.SelectForObject(data().view(id), d, l_, pidx.data(), pdist.data());
  AppendRow(id, ref, pidx.data(), pdist.data());
  file_->Flush();
  seq_->Flush();
}

void EptDisk::RemoveImpl(ObjectId id) {
  const uint32_t rpp = RowsPerPage();
  for (uint32_t row = 0; row < rows_; ++row) {
    PageHandle h = seq_->Read(row / rpp);
    const char* p = h.data() + size_t(row % rpp) * RowBytes();
    ObjectId got;
    std::memcpy(&got, p, 4);
    if (got != id) continue;
    PageHandle wh = seq_->Write(row / rpp);
    ObjectId dead = kInvalidObjectId;
    std::memcpy(wh.mutable_data() + size_t(row % rpp) * RowBytes(), &dead, 4);
    break;
  }
  seq_->Flush();
}

}  // namespace pmi
