#include "src/external/m_index.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <limits>
#include <numeric>
#include <queue>
#include <unordered_map>

#include "src/core/filtering.h"
#include "src/core/knn_heap.h"

namespace pmi {
namespace {

// B+-tree value layout (16 bytes): [oid u32][raf len u32][raf off u64].
struct Value {
  ObjectId oid;
  RafRef ref;
};

void PackValue(const Value& v, char* out) {
  std::memcpy(out, &v.oid, 4);
  std::memcpy(out + 4, &v.ref.length, 4);
  std::memcpy(out + 8, &v.ref.offset, 8);
}

Value UnpackValue(const char* p) {
  Value v;
  std::memcpy(&v.oid, p, 4);
  std::memcpy(&v.ref.length, p + 4, 4);
  std::memcpy(&v.ref.offset, p + 8, 8);
  return v;
}

}  // namespace

// Keys: [cluster_id u32 | quantized d(p_last, o) u32].  Quantization is
// only a within-cluster ordering device; range-scan bounds are made
// conservative with floor/ceil and entries are re-filtered exactly.
uint64_t MIndex::QuantFloor(double d) const {
  double x = std::clamp(d / metric().max_distance(), 0.0, 1.0);
  return static_cast<uint64_t>(x * double(UINT32_MAX));
}

uint64_t MIndex::QuantCeil(double d) const {
  uint64_t q = QuantFloor(d);
  return q < UINT32_MAX ? q + 1 : q;
}

uint64_t MIndex::MakeKey(uint32_t cluster_id, double d) const {
  return (uint64_t(cluster_id) << 32) | QuantFloor(d);
}

std::vector<uint32_t> MIndex::NearestOrder(
    const std::vector<double>& phi) const {
  std::vector<uint32_t> order(phi.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](uint32_t a, uint32_t b) { return phi[a] < phi[b]; });
  return order;
}

MIndex::Cluster* MIndex::MakeLeaf(uint32_t pivot, uint32_t depth) {
  auto* c = new Cluster();
  c->pivot = pivot;
  c->depth = depth;
  c->cluster_id = next_cluster_id_++;
  c->minkey = std::numeric_limits<double>::max();
  c->maxkey = -1;
  if (variant_ == Variant::kStar) {
    const uint32_t l = pivots_.size();
    c->mbb.assign(2 * l, 0);
    for (uint32_t j = 0; j < l; ++j) {
      c->mbb[j] = std::numeric_limits<double>::max();
      c->mbb[l + j] = std::numeric_limits<double>::lowest();
    }
  }
  ++cluster_nodes_;
  return c;
}

MIndex::Cluster* MIndex::Locate(const std::vector<uint32_t>& order,
                                bool create) {
  Cluster* node = root_.get();
  uint32_t level = 0;
  while (!node->leaf) {
    uint32_t next = order[level];
    if (!node->kids[next]) {
      if (!create) return nullptr;
      node->kids[next].reset(MakeLeaf(next, level + 1));
    }
    node = node->kids[next].get();
    ++level;
  }
  return node;
}

void MIndex::ExpandSummaries(Cluster* leaf, const std::vector<double>& phi) {
  double key = phi[leaf->pivot];
  leaf->minkey = std::min(leaf->minkey, key);
  leaf->maxkey = std::max(leaf->maxkey, key);
  ++leaf->count;
  if (variant_ == Variant::kStar) {
    const uint32_t l = pivots_.size();
    for (uint32_t j = 0; j < l; ++j) {
      leaf->mbb[j] = std::min(leaf->mbb[j], phi[j]);
      leaf->mbb[l + j] = std::max(leaf->mbb[l + j], phi[j]);
    }
  }
}

ObjectView MIndex::ReadRecord(const RafRef& ref, std::vector<char>* buf,
                              std::vector<double>* phi) const {
  // RAF record layout: [phi l*f64][object payload].
  CheckOk(raf_->ReadRecord(ref, buf), "M-index RAF read");
  const uint32_t l = pivots_.size();
  phi->resize(l);
  std::memcpy(phi->data(), buf->data(), 8 * l);
  return data().DeserializeObject(buf->data() + 8 * l,
                                  static_cast<uint32_t>(buf->size()) - 8 * l);
}

void MIndex::BuildImpl() {
  assert(pivots_.size() >= (variant_ == Variant::kStar ? 2u : 1u) &&
         "hyperplane partitioning needs at least two pivots");
  file_ = std::make_unique<PagedFile>(options_.page_size, options_.cache_bytes,
                                      &counters_, options_.buffer_pool);
  btree_ = std::make_unique<BPlusTree>(file_.get(), 16);
  raf_ = std::make_unique<RecordFile>(file_.get());
  next_cluster_id_ = 0;
  cluster_nodes_ = 0;
  const uint32_t l = pivots_.size();
  root_ = std::make_unique<Cluster>();
  root_->leaf = false;
  root_->depth = 0;
  root_->kids.resize(l);

  // Phase 1: map all objects, partition recursively in memory.
  DistanceComputer d = dist();
  std::vector<std::vector<double>> phis(data().size());
  for (ObjectId id = 0; id < data().size(); ++id) {
    pivots_.Map(data().view(id), d, &phis[id]);
  }
  std::vector<std::vector<uint32_t>> orders(data().size());
  for (ObjectId id = 0; id < data().size(); ++id) {
    orders[id] = NearestOrder(phis[id]);
  }

  struct Task {
    Cluster* node;       // internal node to fill
    std::vector<ObjectId> members;
    uint32_t level;      // order[] index used to partition
  };
  // Seed: partition everything by nearest pivot under the pseudo-root.
  std::vector<std::pair<Cluster*, std::vector<ObjectId>>> leaves;
  std::vector<Task> tasks;
  {
    std::vector<std::vector<ObjectId>> parts(l);
    for (ObjectId id = 0; id < data().size(); ++id) {
      parts[orders[id][0]].push_back(id);
    }
    for (uint32_t j = 0; j < l; ++j) {
      if (parts[j].empty()) continue;
      root_->kids[j].reset(MakeLeaf(j, 1));
      if (parts[j].size() > options_.mindex_maxnum && 1 < l) {
        root_->kids[j]->leaf = false;
        root_->kids[j]->kids.resize(l);
        tasks.push_back({root_->kids[j].get(), std::move(parts[j]), 1});
      } else {
        leaves.push_back({root_->kids[j].get(), std::move(parts[j])});
      }
    }
  }
  while (!tasks.empty()) {
    Task t = std::move(tasks.back());
    tasks.pop_back();
    std::vector<std::vector<ObjectId>> parts(l);
    for (ObjectId id : t.members) parts[orders[id][t.level]].push_back(id);
    for (uint32_t j = 0; j < l; ++j) {
      if (parts[j].empty()) continue;
      t.node->kids[j].reset(MakeLeaf(j, t.level + 1));
      Cluster* child = t.node->kids[j].get();
      if (parts[j].size() > options_.mindex_maxnum && t.level + 1 < l) {
        child->leaf = false;
        child->kids.resize(l);
        tasks.push_back({child, std::move(parts[j]), t.level + 1});
      } else {
        leaves.push_back({child, std::move(parts[j])});
      }
    }
  }

  // Phase 2: RAF + B+-tree in key order (cluster ids ascend in creation
  // order, so sorting groups clusters contiguously -- sequential I/O).
  std::sort(leaves.begin(), leaves.end(), [](const auto& a, const auto& b) {
    return a.first->cluster_id < b.first->cluster_id;
  });
  std::vector<std::pair<uint64_t, std::vector<char>>> entries;
  entries.reserve(data().size());
  std::string obj_buf;
  std::vector<char> rec;
  for (auto& [leaf, members] : leaves) {
    std::sort(members.begin(), members.end(),
              [&](ObjectId a, ObjectId b) {
                return phis[a][leaf->pivot] < phis[b][leaf->pivot];
              });
    for (ObjectId id : members) {
      const std::vector<double>& phi = phis[id];
      obj_buf.clear();
      data().SerializeObject(id, &obj_buf);
      rec.assign(8 * size_t(l) + obj_buf.size(), 0);
      std::memcpy(rec.data(), phi.data(), 8 * l);
      std::memcpy(rec.data() + 8 * l, obj_buf.data(), obj_buf.size());
      RafRef ref = raf_->Append(rec.data(), static_cast<uint32_t>(rec.size()));
      std::vector<char> value(16);
      PackValue({id, ref}, value.data());
      entries.emplace_back(MakeKey(leaf->cluster_id, phi[leaf->pivot]),
                           std::move(value));
      ExpandSummaries(leaf, phi);
    }
  }
  std::stable_sort(entries.begin(), entries.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  btree_->BulkLoad(entries);
  file_->Flush();
}

void MIndex::RangeSearch(const ObjectView& q,
                         const std::vector<double>& phi_q, double r,
                         bool validate, std::vector<ObjectId>* out) const {
  const uint32_t l = pivots_.size();
  DistanceComputer d = dist();

  struct Frame {
    const Cluster* node;
    uint32_t used_mask;
  };
  std::vector<Frame> stack{{root_.get(), 0}};
  std::vector<char> buf;
  std::vector<double> phi_o;
  while (!stack.empty()) {
    auto [node, used_mask] = stack.back();
    stack.pop_back();
    if (!node->leaf) {
      // Cheapest unused pivot distance, for the double-pivot test.
      double min_avail = std::numeric_limits<double>::max();
      for (uint32_t j = 0; j < l; ++j) {
        if (!(used_mask & (1u << j))) min_avail = std::min(min_avail, phi_q[j]);
      }
      for (uint32_t j = 0; j < l; ++j) {
        const Cluster* child =
            j < node->kids.size() ? node->kids[j].get() : nullptr;
        if (child == nullptr) continue;
        if (PrunedByHyperplane(phi_q[j], min_avail, r)) continue;  // Lemma 3
        stack.push_back({child, used_mask | (1u << j)});
      }
      continue;
    }
    if (node->count == 0) continue;
    if (validate &&
        MbbPrunedByPivots(node->mbb.data(), node->mbb.data() + l,
                          phi_q.data(), l, r)) {
      continue;  // M-index*: Lemma 1 over the cluster MBB
    }
    // iDistance ring restriction within the cluster's key range.
    double lo = std::max(node->minkey, phi_q[node->pivot] - r);
    double hi = std::min(node->maxkey, phi_q[node->pivot] + r);
    if (lo > hi) continue;
    uint64_t base = uint64_t(node->cluster_id) << 32;
    btree_->Scan(base | QuantFloor(lo), base | QuantCeil(hi),
                 [&](uint64_t, const char* vp) {
                   Value v = UnpackValue(vp);
                   ObjectView obj = ReadRecord(v.ref, &buf, &phi_o);
                   if (PrunedByPivots(phi_o.data(), phi_q.data(), l, r)) {
                     return true;
                   }
                   if (validate && ValidatedByPivots(phi_o.data(),
                                                     phi_q.data(), l, r)) {
                     out->push_back(v.oid);  // Lemma 4: no verification
                     return true;
                   }
                   if (d(q, obj) <= r) out->push_back(v.oid);
                   return true;
                 });
  }
}

void MIndex::RangeImpl(const ObjectView& q, double r,
                       std::vector<ObjectId>* out) const {
  DistanceComputer d = dist();
  std::vector<double> phi_q;
  pivots_.Map(q, d, &phi_q);
  RangeSearch(q, phi_q, r, variant_ == Variant::kStar, out);
}

void MIndex::KnnImpl(const ObjectView& q, size_t k,
                     std::vector<Neighbor>* out) const {
  if (k == 0) return;
  DistanceComputer d = dist();
  std::vector<double> phi_q;
  pivots_.Map(q, d, &phi_q);
  const uint32_t l = pivots_.size();

  if (variant_ == Variant::kBasic) {
    // Incremental-radius MRQs; verified distances are cached so the
    // repeated traversals cost I/O and CPU but not compdists (Fig. 15).
    std::unordered_map<ObjectId, double> verified;
    std::vector<char> buf;
    std::vector<double> phi_o;
    double r = metric().max_distance() / 256;
    while (true) {
      struct Frame {
        const Cluster* node;
        uint32_t used_mask;
      };
      std::vector<Frame> stack{{root_.get(), 0}};
      while (!stack.empty()) {
        auto [node, used_mask] = stack.back();
        stack.pop_back();
        if (!node->leaf) {
          double min_avail = std::numeric_limits<double>::max();
          for (uint32_t j = 0; j < l; ++j) {
            if (!(used_mask & (1u << j))) {
              min_avail = std::min(min_avail, phi_q[j]);
            }
          }
          for (uint32_t j = 0; j < l; ++j) {
            const Cluster* child =
                j < node->kids.size() ? node->kids[j].get() : nullptr;
            if (child == nullptr) continue;
            if (PrunedByHyperplane(phi_q[j], min_avail, r)) continue;
            stack.push_back({child, used_mask | (1u << j)});
          }
          continue;
        }
        if (node->count == 0) continue;
        double lo = std::max(node->minkey, phi_q[node->pivot] - r);
        double hi = std::min(node->maxkey, phi_q[node->pivot] + r);
        if (lo > hi) continue;
        uint64_t base = uint64_t(node->cluster_id) << 32;
        btree_->Scan(base | QuantFloor(lo), base | QuantCeil(hi),
                     [&](uint64_t, const char* vp) {
                       Value v = UnpackValue(vp);
                       if (verified.count(v.oid)) return true;
                       ObjectView obj = ReadRecord(v.ref, &buf, &phi_o);
                       if (PrunedByPivots(phi_o.data(), phi_q.data(), l, r)) {
                         return true;
                       }
                       verified[v.oid] = d(q, obj);
                       return true;
                     });
      }
      size_t within = 0;
      for (const auto& [oid, dv] : verified) within += dv <= r;
      if (within >= k || r >= metric().max_distance()) break;
      r = std::min(r * 2, metric().max_distance());
    }
    KnnHeap heap(k);
    for (const auto& [oid, dv] : verified) heap.Push(oid, dv);
    heap.TakeSorted(out);
    return;
  }

  // M-index*: best-first over leaf clusters by MBB lower bound; one pass.
  struct Entry {
    double lb;
    const Cluster* cluster;
    bool operator>(const Entry& o) const { return lb > o.lb; }
  };
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
  {
    std::vector<const Cluster*> stack{root_.get()};
    while (!stack.empty()) {
      const Cluster* node = stack.back();
      stack.pop_back();
      if (node->leaf) {
        if (node->count > 0) {
          pq.push({MbbLowerBound(node->mbb.data(), node->mbb.data() + l,
                                 phi_q.data(), l),
                   node});
        }
        continue;
      }
      for (const auto& kid : node->kids) {
        if (kid) stack.push_back(kid.get());
      }
    }
  }
  KnnHeap heap(k);
  std::vector<char> buf;
  std::vector<double> phi_o;
  while (!pq.empty()) {
    Entry e = pq.top();
    pq.pop();
    double radius = heap.radius();
    if (e.lb > radius) break;
    const Cluster* node = e.cluster;
    double lo = node->minkey, hi = node->maxkey;
    if (radius < std::numeric_limits<double>::infinity()) {
      lo = std::max(lo, phi_q[node->pivot] - radius);
      hi = std::min(hi, phi_q[node->pivot] + radius);
      if (lo > hi) continue;
    }
    uint64_t base = uint64_t(node->cluster_id) << 32;
    btree_->Scan(base | QuantFloor(lo), base | QuantCeil(hi),
                 [&](uint64_t, const char* vp) {
                   Value v = UnpackValue(vp);
                   ObjectView obj = ReadRecord(v.ref, &buf, &phi_o);
                   if (!PrunedByPivots(phi_o.data(), phi_q.data(), l,
                                       heap.radius())) {
                     heap.Push(v.oid, d(q, obj));
                   }
                   return true;
                 });
  }
  heap.TakeSorted(out);
}

void MIndex::SplitCluster(Cluster* leaf,
                          const std::vector<uint32_t>& chain_used) {
  const uint32_t l = pivots_.size();
  // Collect the cluster's entries, re-read their mappings, re-key under
  // fresh child clusters (the dynamic split of Fig. 12(d)).
  uint64_t base = uint64_t(leaf->cluster_id) << 32;
  std::vector<std::pair<uint64_t, Value>> old_entries;
  btree_->Scan(base, base | 0xFFFFFFFFull, [&](uint64_t k, const char* vp) {
    old_entries.emplace_back(k, UnpackValue(vp));
    return true;
  });
  leaf->leaf = false;
  leaf->kids.resize(l);
  leaf->count = 0;

  std::vector<char> buf;
  std::vector<double> phi;
  for (const auto& [key, value] : old_entries) {
    char oid_bytes[4];
    std::memcpy(oid_bytes, &value.oid, 4);
    bool removed = btree_->Remove(key, oid_bytes, 4);
    assert(removed);
    (void)removed;
    ReadRecord(value.ref, &buf, &phi);
    // The child pivot is the nearest pivot not yet used on the chain.
    std::vector<uint32_t> order = NearestOrder(phi);
    uint32_t next = l;
    for (uint32_t cand : order) {
      bool used = false;
      for (uint32_t u : chain_used) used |= u == cand;
      if (!used) {
        next = cand;
        break;
      }
    }
    assert(next < l);
    if (!leaf->kids[next]) leaf->kids[next].reset(MakeLeaf(next, leaf->depth + 1));
    Cluster* child = leaf->kids[next].get();
    char vbuf[16];
    PackValue(value, vbuf);
    btree_->Insert(MakeKey(child->cluster_id, phi[child->pivot]), vbuf);
    ExpandSummaries(child, phi);
  }
}

void MIndex::InsertImpl(ObjectId id) {
  const uint32_t l = pivots_.size();
  DistanceComputer d = dist();
  std::vector<double> phi;
  pivots_.Map(data().view(id), d, &phi);
  std::vector<uint32_t> order = NearestOrder(phi);
  Cluster* leaf = Locate(order, /*create=*/true);

  std::string obj_buf;
  data().SerializeObject(id, &obj_buf);
  std::vector<char> rec(8 * size_t(l) + obj_buf.size());
  std::memcpy(rec.data(), phi.data(), 8 * l);
  std::memcpy(rec.data() + 8 * l, obj_buf.data(), obj_buf.size());
  RafRef ref = raf_->Append(rec.data(), static_cast<uint32_t>(rec.size()));
  char vbuf[16];
  PackValue({id, ref}, vbuf);
  btree_->Insert(MakeKey(leaf->cluster_id, phi[leaf->pivot]), vbuf);
  ExpandSummaries(leaf, phi);

  if (leaf->count > options_.mindex_maxnum && leaf->depth < l) {
    std::vector<uint32_t> chain(order.begin(), order.begin() + leaf->depth);
    SplitCluster(leaf, chain);
  }
  file_->Flush();
}

void MIndex::RemoveImpl(ObjectId id) {
  DistanceComputer d = dist();
  std::vector<double> phi;
  pivots_.Map(data().view(id), d, &phi);
  Cluster* leaf = Locate(NearestOrder(phi), /*create=*/false);
  if (leaf == nullptr) return;
  char oid_bytes[4];
  std::memcpy(oid_bytes, &id, 4);
  if (btree_->Remove(MakeKey(leaf->cluster_id, phi[leaf->pivot]), oid_bytes,
                     4)) {
    --leaf->count;  // min/max/mbb stay conservative
  }
  file_->Flush();
}

size_t MIndex::memory_bytes() const {
  size_t per_node = sizeof(Cluster) +
                    (variant_ == Variant::kStar
                         ? 2 * size_t(pivots_.size()) * sizeof(double)
                         : 0);
  return cluster_nodes_ * per_node + pivots_.memory_bytes();
}

}  // namespace pmi
