// Order-preserving encodings of distances into B+-tree keys.

#ifndef PMI_EXTERNAL_KEY_CODEC_H_
#define PMI_EXTERNAL_KEY_CODEC_H_

#include <cstdint>
#include <cstring>

namespace pmi {

/// Encodes a non-negative double as a uint64 whose integer order matches
/// the double order (IEEE-754 bit pattern trick; exact, no quantization).
inline uint64_t EncodeOrderedKey(double d) {
  if (d < 0) d = 0;
  uint64_t bits;
  std::memcpy(&bits, &d, 8);
  return bits;
}

/// Inverse of EncodeOrderedKey.
inline double DecodeOrderedKey(uint64_t key) {
  double d;
  std::memcpy(&d, &key, 8);
  return d;
}

}  // namespace pmi

#endif  // PMI_EXTERNAL_KEY_CODEC_H_
