// M-index and M-index* (Novak, Batko, Zezula [23]; Section 5.3).
//
// Generalized iDistance: each object is assigned to the cluster of its
// nearest pivot (generalized hyperplane partitioning); clusters whose
// population exceeds `maxnum` (1,600 in the paper) split recursively by
// the next-nearest pivot, forming the dynamic cluster tree of Fig. 12(d).
// Objects are keyed by cluster id and their distance to the cluster's
// last chain pivot, stored in a B+-tree; the RAF keeps each object
// together with all its pre-computed pivot distances.
//
// MRQ prunes clusters with the double-pivot test (Lemma 3), scans the
// surviving B+-tree ranges, and filters entries with Lemma 1 on the
// stored distances before verifying.  MkNNQ on the basic M-index uses
// the incremental-radius strategy -- re-traversing the index with a
// doubled radius until k results emerge, re-paying I/O but caching
// verified distances -- which is exactly the redundant cost the paper's
// Fig. 15 shows.
//
// M-index* is the paper's enhancement: each cluster additionally carries
// the MBB of its objects' pivot mappings, enabling Lemma 1 pruning of
// whole clusters, a single best-first MkNNQ traversal, and Lemma 4
// validation.

#ifndef PMI_EXTERNAL_M_INDEX_H_
#define PMI_EXTERNAL_M_INDEX_H_

#include <memory>
#include <vector>

#include "src/core/index.h"
#include "src/storage/bptree.h"
#include "src/storage/paged_file.h"
#include "src/storage/raf.h"

namespace pmi {

/// iDistance-style metric index over the shared pivots.
class MIndex final : public MetricIndex {
 public:
  enum class Variant { kBasic, kStar };

  explicit MIndex(Variant variant, IndexOptions options = {})
      : MetricIndex(options), variant_(variant) {}

  std::string name() const override {
    return variant_ == Variant::kBasic ? "M-index" : "M-index*";
  }
  bool disk_based() const override { return true; }
  // Audited: cluster-tree traversal, B+-tree range scans, and RAF reads
  // all use pinned buffer-pool handles and local scratch; counters go
  // through CounterScope.
  bool concurrent_queries() const override { return true; }
  size_t memory_bytes() const override;
  size_t disk_bytes() const override { return file_ ? file_->bytes() : 0; }

 protected:
  void BuildImpl() override;
  void RangeImpl(const ObjectView& q, double r,
                 std::vector<ObjectId>* out) const override;
  void KnnImpl(const ObjectView& q, size_t k,
               std::vector<Neighbor>* out) const override;
  void InsertImpl(ObjectId id) override;
  void RemoveImpl(ObjectId id) override;

 private:
  struct Cluster {
    bool leaf = true;
    uint32_t pivot = 0;       // last pivot of this cluster's chain
    uint32_t depth = 1;       // chain length
    uint32_t cluster_id = 0;  // leaf only; B+-tree key prefix
    uint32_t count = 0;
    double minkey = 0, maxkey = -1;  // leaf: range of d(p_last, o)
    std::vector<double> mbb;         // star: lo[l] ++ hi[l]
    std::vector<std::unique_ptr<Cluster>> kids;  // by pivot index
  };

  uint64_t MakeKey(uint32_t cluster_id, double d) const;
  uint64_t QuantFloor(double d) const;
  uint64_t QuantCeil(double d) const;

  /// Pivot indices of `phi` sorted ascending by distance.
  std::vector<uint32_t> NearestOrder(const std::vector<double>& phi) const;

  Cluster* MakeLeaf(uint32_t pivot, uint32_t depth);
  /// Walks (creating leaves if `create`) to the leaf for `order`.
  Cluster* Locate(const std::vector<uint32_t>& order, bool create);
  void ExpandSummaries(Cluster* leaf, const std::vector<double>& phi);
  void SplitCluster(Cluster* leaf, const std::vector<uint32_t>& chain_used);

  /// Reads an object's RAF record; fills `phi` and returns the payload
  /// start/length within `buf`.
  ObjectView ReadRecord(const RafRef& ref, std::vector<char>* buf,
                        std::vector<double>* phi) const;

  /// Shared MRQ core; `validate` enables Lemma 4 (star).
  void RangeSearch(const ObjectView& q, const std::vector<double>& phi_q,
                   double r, bool validate,
                   std::vector<ObjectId>* out) const;

  Variant variant_;
  std::unique_ptr<PagedFile> file_;
  std::unique_ptr<BPlusTree> btree_;
  std::unique_ptr<RecordFile> raf_;
  std::unique_ptr<Cluster> root_;  // pseudo-root; kids by first pivot
  uint32_t next_cluster_id_ = 0;
  size_t cluster_nodes_ = 0;
};

}  // namespace pmi

#endif  // PMI_EXTERNAL_M_INDEX_H_
