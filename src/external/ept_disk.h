// EPT*-disk -- the paper's Section 7 future-work direction, implemented:
// "extension of EPT(*) to a disk-based metric index with a low
// construction cost is a promising direction."
//
// The EPT* table (per-object PSA pivots + pre-computed distances) is laid
// out in sequential pages, and the objects move to a separate RAF, Omni
// style.  Queries scan the table pages -- Lemma 1 with per-object pivots
// -- and fetch only surviving candidates from the RAF.  Compared with the
// Omni-sequential-file it keeps EPT*'s stronger pruning; compared with
// in-memory EPT* its resident footprint is only the candidate pool.

#ifndef PMI_EXTERNAL_EPT_DISK_H_
#define PMI_EXTERNAL_EPT_DISK_H_

#include <memory>
#include <vector>

#include "src/core/index.h"
#include "src/storage/paged_file.h"
#include "src/storage/raf.h"
#include "src/tables/psa.h"

namespace pmi {

/// Disk-resident EPT*.
class EptDisk final : public MetricIndex {
 public:
  explicit EptDisk(IndexOptions options = {}) : MetricIndex(options) {}

  std::string name() const override { return "EPT*-disk"; }
  bool disk_based() const override { return true; }
  // Audited: table scans and RAF reads use pinned buffer-pool handles
  // and local scratch; counters go through CounterScope.
  bool concurrent_queries() const override { return true; }
  size_t memory_bytes() const override { return psa_.memory_bytes(); }
  size_t disk_bytes() const override {
    return (file_ ? file_->bytes() : 0) + (seq_ ? seq_->bytes() : 0);
  }

 protected:
  void BuildImpl() override;
  void RangeImpl(const ObjectView& q, double r,
                 std::vector<ObjectId>* out) const override;
  void KnnImpl(const ObjectView& q, size_t k,
               std::vector<Neighbor>* out) const override;
  void InsertImpl(ObjectId id) override;
  void RemoveImpl(ObjectId id) override;

 private:
  // Row: [oid u32][raf len u32][raf off u64] + l x ([pivot u32][dist f64]).
  uint32_t RowBytes() const { return 16 + 12 * l_; }
  uint32_t RowsPerPage() const { return options_.page_size / RowBytes(); }
  void AppendRow(ObjectId id, const RafRef& ref, const uint32_t* pidx,
                 const double* pdist);

  uint32_t l_ = 0;
  PsaSelector psa_;
  std::unique_ptr<PagedFile> file_;  // RAF backing
  std::unique_ptr<PagedFile> seq_;   // table pages
  std::unique_ptr<RecordFile> raf_;
  uint32_t rows_ = 0;
};

}  // namespace pmi

#endif  // PMI_EXTERNAL_EPT_DISK_H_
