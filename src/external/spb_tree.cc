#include "src/external/spb_tree.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <queue>

#include "src/core/filtering.h"
#include "src/core/knn_heap.h"

namespace pmi {
namespace {

// B+-tree value layout (16 bytes): [oid u32][raf len u32][raf off u64].
struct Value {
  ObjectId oid;
  RafRef ref;
};

void PackValue(const Value& v, char* out) {
  std::memcpy(out, &v.oid, 4);
  std::memcpy(out + 4, &v.ref.length, 4);
  std::memcpy(out + 8, &v.ref.offset, 8);
}

Value UnpackValue(const char* p) {
  Value v;
  std::memcpy(&v.oid, p, 4);
  std::memcpy(&v.ref.length, p + 4, 4);
  std::memcpy(&v.ref.offset, p + 8, 8);
  return v;
}

}  // namespace

uint32_t SpbTree::CellOf(double d) const {
  if (d <= 0) return 0;
  uint32_t c = static_cast<uint32_t>(d / cell_width_);
  return std::min(c, curve_->max_coord());
}

uint64_t SpbTree::KeyOf(const std::vector<double>& phi) const {
  uint32_t cells[64];
  for (uint32_t i = 0; i < phi.size(); ++i) cells[i] = CellOf(phi[i]);
  return curve_->Encode(cells);
}

void SpbTree::BuildImpl() {
  const uint32_t l = pivots_.size();
  uint32_t bits = options_.spb_bits_per_dim > 0 ? options_.spb_bits_per_dim
                                                : HilbertCurve::AutoBits(l);
  curve_ = std::make_unique<HilbertCurve>(l, bits);
  cell_width_ = metric().max_distance() / (curve_->max_coord() + 1.0);

  file_ = std::make_unique<PagedFile>(options_.page_size, options_.cache_bytes,
                                      &counters_, options_.buffer_pool);
  // Non-leaf entries aggregate the grid cells of their subtree: the MBB
  // of Section 5.4, decoded from the Hilbert key on demand.
  const HilbertCurve* curve = curve_.get();
  btree_ = std::make_unique<BPlusTree>(
      file_.get(), 16, l,
      [curve](uint64_t key, const char*, float* coords) {
        uint32_t cells[64];
        curve->Decode(key, cells);
        for (uint32_t i = 0; i < curve->dims(); ++i) {
          coords[i] = static_cast<float>(cells[i]);
        }
      });
  raf_ = std::make_unique<RecordFile>(file_.get());

  // Map everything, sort by curve position, lay the RAF out in curve
  // order (the locality that gives the SPB-tree its low I/O), bulk load.
  DistanceComputer d = dist();
  std::vector<std::pair<uint64_t, ObjectId>> keyed(data().size());
  std::vector<double> phi;
  for (ObjectId id = 0; id < data().size(); ++id) {
    pivots_.Map(data().view(id), d, &phi);
    keyed[id] = {KeyOf(phi), id};
  }
  std::sort(keyed.begin(), keyed.end());
  std::vector<std::pair<uint64_t, std::vector<char>>> entries;
  entries.reserve(keyed.size());
  std::string buf;
  for (const auto& [key, id] : keyed) {
    buf.clear();
    data().SerializeObject(id, &buf);
    RafRef ref = raf_->Append(buf.data(), static_cast<uint32_t>(buf.size()));
    std::vector<char> value(16);
    PackValue({id, ref}, value.data());
    entries.emplace_back(key, std::move(value));
  }
  btree_->BulkLoad(entries);
  file_->Flush();
}

void SpbTree::RangeImpl(const ObjectView& q, double r,
                        std::vector<ObjectId>* out) const {
  const uint32_t l = pivots_.size();
  DistanceComputer d = dist();
  std::vector<double> phi_q;
  pivots_.Map(q, d, &phi_q);

  std::vector<PageId> stack{btree_->root()};
  uint32_t cells[64];
  std::vector<char> buf;
  while (!stack.empty()) {
    BPlusTree::NodeView node = btree_->ReadNode(stack.back());
    stack.pop_back();
    for (uint32_t i = 0; i < node.count; ++i) {
      if (!node.is_leaf) {
        // Aggregated cell MBB -> conservative distance box.
        bool pruned = false;
        for (uint32_t j = 0; j < l && !pruned; ++j) {
          double lo = CellLo(static_cast<uint32_t>(node.agg_lo(i)[j]));
          double hi = CellHi(static_cast<uint32_t>(node.agg_hi(i)[j]));
          pruned = lo > phi_q[j] + r || hi < phi_q[j] - r;
        }
        if (!pruned) stack.push_back(node.child(i));
        continue;
      }
      curve_->Decode(node.key(i), cells);
      // Lemma 1 on the cell box [c*w, (c+1)*w).
      bool pruned = false;
      bool validated = false;
      for (uint32_t j = 0; j < l && !pruned; ++j) {
        pruned = CellLo(cells[j]) > phi_q[j] + r ||
                 CellHi(cells[j]) < phi_q[j] - r;
      }
      if (pruned) continue;
      // Lemma 4 on the conservative upper end of the cell.
      for (uint32_t j = 0; j < l && !validated; ++j) {
        validated = CellHi(cells[j]) <= r - phi_q[j];
      }
      Value v = UnpackValue(node.value(i));
      if (validated) {
        out->push_back(v.oid);  // no verification needed
        continue;
      }
      CheckOk(raf_->ReadRecord(v.ref, &buf), "SPB-tree RAF read");
      ObjectView obj = data().DeserializeObject(
          buf.data(), static_cast<uint32_t>(buf.size()));
      if (d(q, obj) <= r) out->push_back(v.oid);
    }
  }
}

void SpbTree::KnnImpl(const ObjectView& q, size_t k,
                      std::vector<Neighbor>* out) const {
  const uint32_t l = pivots_.size();
  DistanceComputer d = dist();
  std::vector<double> phi_q;
  pivots_.Map(q, d, &phi_q);
  KnnHeap heap(k);

  struct Item {
    double lb;
    PageId page;
    bool operator>(const Item& o) const { return lb > o.lb; }
  };
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  pq.push({0, btree_->root()});
  uint32_t cells[64];
  std::vector<char> buf;
  while (!pq.empty()) {
    Item item = pq.top();
    pq.pop();
    if (item.lb > heap.radius()) break;
    BPlusTree::NodeView node = btree_->ReadNode(item.page);
    for (uint32_t i = 0; i < node.count; ++i) {
      if (!node.is_leaf) {
        double lb = item.lb;
        for (uint32_t j = 0; j < l; ++j) {
          double lo = CellLo(static_cast<uint32_t>(node.agg_lo(i)[j]));
          double hi = CellHi(static_cast<uint32_t>(node.agg_hi(i)[j]));
          if (phi_q[j] < lo) {
            lb = std::max(lb, lo - phi_q[j]);
          } else if (phi_q[j] > hi) {
            lb = std::max(lb, phi_q[j] - hi);
          }
        }
        if (lb <= heap.radius()) pq.push({lb, node.child(i)});
        continue;
      }
      curve_->Decode(node.key(i), cells);
      double lb = 0;
      for (uint32_t j = 0; j < l; ++j) {
        double lo = CellLo(cells[j]), hi = CellHi(cells[j]);
        if (phi_q[j] < lo) {
          lb = std::max(lb, lo - phi_q[j]);
        } else if (phi_q[j] > hi) {
          lb = std::max(lb, phi_q[j] - hi);
        }
      }
      if (lb > heap.radius()) continue;
      Value v = UnpackValue(node.value(i));
      CheckOk(raf_->ReadRecord(v.ref, &buf), "SPB-tree RAF read");
      ObjectView obj = data().DeserializeObject(
          buf.data(), static_cast<uint32_t>(buf.size()));
      heap.Push(v.oid, d(q, obj));
    }
  }
  heap.TakeSorted(out);
}

void SpbTree::InsertImpl(ObjectId id) {
  DistanceComputer d = dist();
  std::vector<double> phi;
  pivots_.Map(data().view(id), d, &phi);
  std::string buf;
  data().SerializeObject(id, &buf);
  RafRef ref = raf_->Append(buf.data(), static_cast<uint32_t>(buf.size()));
  char vbuf[16];
  PackValue({id, ref}, vbuf);
  btree_->Insert(KeyOf(phi), vbuf);
  file_->Flush();
}

void SpbTree::RemoveImpl(ObjectId id) {
  DistanceComputer d = dist();
  std::vector<double> phi;
  pivots_.Map(data().view(id), d, &phi);
  char oid_bytes[4];
  std::memcpy(oid_bytes, &id, 4);
  btree_->Remove(KeyOf(phi), oid_bytes, 4);
  file_->Flush();
}

}  // namespace pmi
