#include "src/external/pm_tree.h"

#include <cmath>
#include <queue>

#include "src/core/filtering.h"
#include "src/core/knn_heap.h"

namespace pmi {
namespace {

/// Lemma 1 against float data with slack: prune only when the violation
/// exceeds eps, so float rounding can never drop a true result.
bool PhiPruned(const float* phi_o, const double* phi_q, uint32_t l, double r,
               double eps) {
  for (uint32_t i = 0; i < l; ++i) {
    if (std::fabs(double(phi_o[i]) - phi_q[i]) > r + eps) return true;
  }
  return false;
}

bool MbbPruned(const float* mbb, const double* phi_q, uint32_t l, double r,
               double eps) {
  for (uint32_t i = 0; i < l; ++i) {
    if (double(mbb[i]) > phi_q[i] + r + eps) return true;
    if (double(mbb[l + i]) < phi_q[i] - r - eps) return true;
  }
  return false;
}

double MbbBound(const float* mbb, const double* phi_q, uint32_t l,
                double eps) {
  double best = 0;
  for (uint32_t i = 0; i < l; ++i) {
    if (phi_q[i] < mbb[i]) {
      best = std::max(best, double(mbb[i]) - phi_q[i]);
    } else if (phi_q[i] > mbb[l + i]) {
      best = std::max(best, phi_q[i] - double(mbb[l + i]));
    }
  }
  return std::max(0.0, best - eps);
}

}  // namespace

std::vector<float> PmTree::MapToFloat(const ObjectView& o) const {
  DistanceComputer d = dist();
  std::vector<double> phi;
  pivots_.Map(o, d, &phi);
  return {phi.begin(), phi.end()};
}

void PmTree::BuildImpl() {
  eps_ = metric().max_distance() * 1e-6 + 1e-9;
  file_ = std::make_unique<PagedFile>(options_.page_size, options_.cache_bytes,
                                      &counters_, options_.buffer_pool);
  MTree::Options mo;
  mo.store_pivot_data = true;
  mo.num_pivots = pivots_.size();
  mo.seed = options_.seed;
  mtree_ = std::make_unique<MTree>(file_.get(), data_, dist(), mo);
  for (ObjectId id = 0; id < data().size(); ++id) {
    mtree_->Insert(id, MapToFloat(data().view(id)));
  }
  file_->Flush();
}

void PmTree::RangeImpl(const ObjectView& q, double r,
                       std::vector<ObjectId>* out) const {
  DistanceComputer d = dist();
  std::vector<double> phi_q;
  pivots_.Map(q, d, &phi_q);
  const uint32_t l = pivots_.size();

  struct Frame {
    PageId page;
    double d_parent;  // d(q, parent RO); unused at the root
    bool has_parent;
  };
  std::vector<Frame> stack{{mtree_->root(), 0, false}};
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    MTreeNode node = mtree_->LoadNode(f.page);
    if (node.is_leaf) {
      for (const auto& e : node.leaves) {
        // Parent-distance test (free), then Lemma 1 on stored phi (free),
        // then the real distance.
        if (f.has_parent && std::fabs(f.d_parent - e.pd) > r + eps_) continue;
        if (PhiPruned(e.phi.data(), phi_q.data(), l, r, eps_)) continue;
        if (d(q, mtree_->ViewOf(e.obj)) <= r) out->push_back(e.oid);
      }
      continue;
    }
    for (const auto& e : node.children) {
      if (f.has_parent &&
          std::fabs(f.d_parent - e.pd) > r + e.radius + eps_) {
        continue;  // parent-distance test avoids computing d(q, RO)
      }
      if (MbbPruned(e.mbb.data(), phi_q.data(), l, r, eps_)) continue;
      double dq = d(q, mtree_->ViewOf(e.ro));
      if (PrunedByBall(dq, e.radius + eps_, r)) continue;  // Lemma 2
      stack.push_back({e.child, dq, true});
    }
  }
}

void PmTree::KnnImpl(const ObjectView& q, size_t k,
                     std::vector<Neighbor>* out) const {
  DistanceComputer d = dist();
  std::vector<double> phi_q;
  pivots_.Map(q, d, &phi_q);
  const uint32_t l = pivots_.size();
  KnnHeap heap(k);

  struct Item {
    double lb;
    PageId page;
    double d_parent;
    bool has_parent;
    bool operator>(const Item& o) const { return lb > o.lb; }
  };
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  pq.push({0, mtree_->root(), 0, false});
  while (!pq.empty()) {
    Item item = pq.top();
    pq.pop();
    if (item.lb > heap.radius()) break;
    MTreeNode node = mtree_->LoadNode(item.page);
    double radius = heap.radius();
    if (node.is_leaf) {
      for (const auto& e : node.leaves) {
        radius = heap.radius();
        if (item.has_parent &&
            std::fabs(item.d_parent - e.pd) > radius + eps_) {
          continue;
        }
        if (PhiPruned(e.phi.data(), phi_q.data(), l, radius, eps_)) continue;
        heap.Push(e.oid, d(q, mtree_->ViewOf(e.obj)));
      }
      continue;
    }
    for (const auto& e : node.children) {
      radius = heap.radius();
      if (item.has_parent &&
          std::fabs(item.d_parent - e.pd) > radius + e.radius + eps_) {
        continue;
      }
      double mbb_bound = MbbBound(e.mbb.data(), phi_q.data(), l, eps_);
      if (mbb_bound > radius) continue;
      double dq = d(q, mtree_->ViewOf(e.ro));
      double lb = std::max({item.lb, mbb_bound,
                            BallLowerBound(dq, e.radius + eps_)});
      if (lb <= radius) pq.push({lb, e.child, dq, true});
    }
  }
  heap.TakeSorted(out);
}

void PmTree::InsertImpl(ObjectId id) {
  mtree_->Insert(id, MapToFloat(data().view(id)));
  file_->Flush();
}

void PmTree::RemoveImpl(ObjectId id) {
  mtree_->Remove(id);
  file_->Flush();
}

}  // namespace pmi
