#include "src/external/omni.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <limits>
#include <queue>
#include <unordered_map>
#include <unordered_set>

#include "src/core/filtering.h"
#include "src/core/knn_heap.h"
#include "src/external/key_codec.h"

namespace pmi {

// -- shared base --------------------------------------------------------------

void OmniBase::InitStorage() {
  eps_ = metric().max_distance() * 1e-6 + 1e-9;
  file_ = std::make_unique<PagedFile>(options_.page_size, options_.cache_bytes,
                                      &counters_, options_.buffer_pool);
  raf_ = std::make_unique<RecordFile>(file_.get());
}

std::vector<double> OmniBase::Map(const ObjectView& o) const {
  DistanceComputer d = dist();
  std::vector<double> phi;
  pivots_.Map(o, d, &phi);
  return phi;
}

double OmniBase::VerifyFromRaf(const ObjectView& q, const RafRef& ref,
                               double upper) const {
  std::vector<char> buf;
  CheckOk(raf_->ReadRecord(ref, &buf), "Omni RAF read");
  DistanceComputer d = dist();
  return d.Bounded(q,
                   data().DeserializeObject(buf.data(),
                                            static_cast<uint32_t>(buf.size())),
                   upper);
}

// -- Omni-sequential-file -------------------------------------------------------
//
// Row layout (fixed size): [oid u32][pad u32][raf off u64][raf len u32]
// [pad u32]... actually: [oid u32][raf len u32][raf off u64][phi l*f64].
// A tombstone sets oid = kInvalidObjectId.

void OmniSequential::AppendRow(ObjectId id, const std::vector<double>& phi,
                               const RafRef& ref) {
  const uint32_t rpp = RowsPerPage();
  uint32_t page_idx = rows_ / rpp;
  uint32_t slot = rows_ % rpp;
  while (page_idx >= seq_->num_pages()) seq_->Allocate();
  PageHandle h = seq_->Write(page_idx, /*load=*/slot != 0);
  char* row = h.mutable_data() + size_t(slot) * RowBytes();
  std::memcpy(row, &id, 4);
  std::memcpy(row + 4, &ref.length, 4);
  std::memcpy(row + 8, &ref.offset, 8);
  std::memcpy(row + 16, phi.data(), 8 * pivots_.size());
  ++rows_;
}

void OmniSequential::BuildImpl() {
  InitStorage();
  seq_ = std::make_unique<PagedFile>(options_.page_size, options_.cache_bytes,
                                     &counters_, options_.buffer_pool);
  rows_ = 0;
  std::string buf;
  for (ObjectId id = 0; id < data().size(); ++id) {
    buf.clear();
    data().SerializeObject(id, &buf);
    RafRef ref = raf_->Append(buf.data(), static_cast<uint32_t>(buf.size()));
    AppendRow(id, Map(data().view(id)), ref);
  }
  file_->Flush();
  seq_->Flush();
}

void OmniSequential::RangeImpl(const ObjectView& q, double r,
                               std::vector<ObjectId>* out) const {
  const uint32_t l = pivots_.size();
  std::vector<double> phi_q = Map(q);
  const uint32_t rpp = RowsPerPage();
  std::vector<double> phi(l);
  for (uint32_t row = 0; row < rows_; ++row) {
    PageHandle h = seq_->Read(row / rpp);
    const char* p = h.data() + size_t(row % rpp) * RowBytes();
    ObjectId id;
    std::memcpy(&id, p, 4);
    if (id == kInvalidObjectId) continue;  // tombstone
    std::memcpy(phi.data(), p + 16, 8 * l);
    if (PrunedByPivots(phi.data(), phi_q.data(), l, r)) continue;
    RafRef ref;
    std::memcpy(&ref.length, p + 4, 4);
    std::memcpy(&ref.offset, p + 8, 8);
    if (VerifyFromRaf(q, ref, r) <= r) out->push_back(id);
  }
}

void OmniSequential::KnnImpl(const ObjectView& q, size_t k,
                             std::vector<Neighbor>* out) const {
  const uint32_t l = pivots_.size();
  std::vector<double> phi_q = Map(q);
  const uint32_t rpp = RowsPerPage();
  std::vector<double> phi(l);
  KnnHeap heap(k);
  for (uint32_t row = 0; row < rows_; ++row) {
    PageHandle h = seq_->Read(row / rpp);
    const char* p = h.data() + size_t(row % rpp) * RowBytes();
    ObjectId id;
    std::memcpy(&id, p, 4);
    if (id == kInvalidObjectId) continue;
    std::memcpy(phi.data(), p + 16, 8 * l);
    if (PrunedByPivots(phi.data(), phi_q.data(), l, heap.radius())) continue;
    RafRef ref;
    std::memcpy(&ref.length, p + 4, 4);
    std::memcpy(&ref.offset, p + 8, 8);
    heap.Push(id, VerifyFromRaf(q, ref, heap.radius()));
  }
  heap.TakeSorted(out);
}

void OmniSequential::InsertImpl(ObjectId id) {
  std::string buf;
  data().SerializeObject(id, &buf);
  RafRef ref = raf_->Append(buf.data(), static_cast<uint32_t>(buf.size()));
  AppendRow(id, Map(data().view(id)), ref);
  file_->Flush();
  seq_->Flush();
}

void OmniSequential::RemoveImpl(ObjectId id) {
  const uint32_t rpp = RowsPerPage();
  for (uint32_t row = 0; row < rows_; ++row) {
    PageHandle h = seq_->Read(row / rpp);
    const char* p = h.data() + size_t(row % rpp) * RowBytes();
    ObjectId got;
    std::memcpy(&got, p, 4);
    if (got != id) continue;
    PageHandle wh = seq_->Write(row / rpp);
    ObjectId dead = kInvalidObjectId;
    std::memcpy(wh.mutable_data() + size_t(row % rpp) * RowBytes(), &dead, 4);
    break;
  }
  seq_->Flush();
}

// -- OmniB+-tree ----------------------------------------------------------------
//
// Value layout (16 bytes): [oid u32][raf len u32][raf off u64].

namespace {

struct OmniValue {
  ObjectId oid;
  RafRef ref;
};

void PackValue(const OmniValue& v, char* out) {
  std::memcpy(out, &v.oid, 4);
  std::memcpy(out + 4, &v.ref.length, 4);
  std::memcpy(out + 8, &v.ref.offset, 8);
}

OmniValue UnpackValue(const char* p) {
  OmniValue v;
  std::memcpy(&v.oid, p, 4);
  std::memcpy(&v.ref.length, p + 4, 4);
  std::memcpy(&v.ref.offset, p + 8, 8);
  return v;
}

}  // namespace

void OmniBTree::BuildImpl() {
  InitStorage();
  const uint32_t l = pivots_.size();
  trees_.clear();
  std::vector<std::vector<std::pair<uint64_t, std::vector<char>>>> entries(l);
  std::string buf;
  for (ObjectId id = 0; id < data().size(); ++id) {
    buf.clear();
    data().SerializeObject(id, &buf);
    RafRef ref = raf_->Append(buf.data(), static_cast<uint32_t>(buf.size()));
    std::vector<double> phi = Map(data().view(id));
    std::vector<char> value(16);
    PackValue({id, ref}, value.data());
    for (uint32_t i = 0; i < l; ++i) {
      entries[i].emplace_back(EncodeOrderedKey(phi[i]), value);
    }
  }
  for (uint32_t i = 0; i < l; ++i) {
    trees_.push_back(std::make_unique<BPlusTree>(file_.get(), 16));
    std::sort(entries[i].begin(), entries[i].end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    trees_[i]->BulkLoad(entries[i]);
  }
  file_->Flush();
}

void OmniBTree::CollectCandidates(
    const std::vector<double>& phi_q, double r,
    std::vector<std::pair<ObjectId, RafRef>>* out) const {
  const uint32_t l = pivots_.size();
  // Scan tree 0 for the seed candidate set, then intersect with the id
  // sets of the remaining trees (each scanned over its own range).
  std::unordered_map<ObjectId, RafRef> candidates;
  trees_[0]->Scan(EncodeOrderedKey(std::max(0.0, phi_q[0] - r)),
                  EncodeOrderedKey(phi_q[0] + r),
                  [&](uint64_t, const char* v) {
                    OmniValue val = UnpackValue(v);
                    candidates.emplace(val.oid, val.ref);
                    return true;
                  });
  for (uint32_t i = 1; i < l && !candidates.empty(); ++i) {
    std::unordered_set<ObjectId> seen;
    trees_[i]->Scan(EncodeOrderedKey(std::max(0.0, phi_q[i] - r)),
                    EncodeOrderedKey(phi_q[i] + r),
                    [&](uint64_t, const char* v) {
                      ObjectId oid;
                      std::memcpy(&oid, v, 4);
                      seen.insert(oid);
                      return true;
                    });
    for (auto it = candidates.begin(); it != candidates.end();) {
      it = seen.count(it->first) ? std::next(it) : candidates.erase(it);
    }
  }
  out->assign(candidates.begin(), candidates.end());
}

void OmniBTree::RangeImpl(const ObjectView& q, double r,
                          std::vector<ObjectId>* out) const {
  std::vector<double> phi_q = Map(q);
  std::vector<std::pair<ObjectId, RafRef>> candidates;
  CollectCandidates(phi_q, r, &candidates);
  for (const auto& [oid, ref] : candidates) {
    if (VerifyFromRaf(q, ref, r) <= r) out->push_back(oid);
  }
}

void OmniBTree::KnnImpl(const ObjectView& q, size_t k,
                        std::vector<Neighbor>* out) const {
  if (k == 0) return;
  // Incremental-radius strategy with verified-distance caching: the
  // B+-trees are re-scanned per round (redundant I/O) but no distance is
  // ever recomputed.
  std::vector<double> phi_q = Map(q);
  std::unordered_map<ObjectId, double> verified;
  double r = metric().max_distance() / 256;
  while (true) {
    std::vector<std::pair<ObjectId, RafRef>> candidates;
    CollectCandidates(phi_q, r, &candidates);
    for (const auto& [oid, ref] : candidates) {
      // Cached full distances: later rounds re-test them at larger radii,
      // so bounded verification would poison the cache.
      if (!verified.count(oid)) {
        verified[oid] = VerifyFromRaf(
            q, ref, std::numeric_limits<double>::infinity());
      }
    }
    size_t within = 0;
    for (const auto& [oid, dv] : verified) within += dv <= r;
    if (within >= k || r >= metric().max_distance()) break;
    r = std::min(r * 2, metric().max_distance());
  }
  KnnHeap heap(k);
  for (const auto& [oid, dv] : verified) heap.Push(oid, dv);
  heap.TakeSorted(out);
}

void OmniBTree::InsertImpl(ObjectId id) {
  std::string buf;
  data().SerializeObject(id, &buf);
  RafRef ref = raf_->Append(buf.data(), static_cast<uint32_t>(buf.size()));
  std::vector<double> phi = Map(data().view(id));
  char value[16];
  PackValue({id, ref}, value);
  for (uint32_t i = 0; i < trees_.size(); ++i) {
    trees_[i]->Insert(EncodeOrderedKey(phi[i]), value);
  }
  file_->Flush();
}

void OmniBTree::RemoveImpl(ObjectId id) {
  std::vector<double> phi = Map(data().view(id));
  char oid_bytes[4];
  std::memcpy(oid_bytes, &id, 4);
  for (uint32_t i = 0; i < trees_.size(); ++i) {
    trees_[i]->Remove(EncodeOrderedKey(phi[i]), oid_bytes, 4);
  }
  file_->Flush();
}

// -- OmniR-tree -----------------------------------------------------------------

std::vector<float> OmniRTree::MapToFloat(ObjectId id) const {
  std::vector<double> phi = Map(data().view(id));
  return {phi.begin(), phi.end()};
}

void OmniRTree::BuildImpl() {
  InitStorage();
  rtree_ = std::make_unique<RTree>(file_.get(), pivots_.size());
  refs_.assign(data().size(), RafRef{});
  std::vector<RTree::LeafEntry> entries(data().size());
  std::string buf;
  for (ObjectId id = 0; id < data().size(); ++id) {
    buf.clear();
    data().SerializeObject(id, &buf);
    refs_[id] = raf_->Append(buf.data(), static_cast<uint32_t>(buf.size()));
    entries[id].point = MapToFloat(id);
    entries[id].oid = id;
    entries[id].ref = refs_[id];
  }
  rtree_->BulkLoad(std::move(entries));
  file_->Flush();
}

void OmniRTree::RangeImpl(const ObjectView& q, double r,
                          std::vector<ObjectId>* out) const {
  const uint32_t l = pivots_.size();
  std::vector<double> phi_q = Map(q);
  std::vector<PageId> stack{rtree_->root()};
  while (!stack.empty()) {
    RTree::NodeView node = rtree_->ReadNode(stack.back());
    stack.pop_back();
    for (uint32_t i = 0; i < node.count; ++i) {
      if (node.is_leaf) {
        const float* pt = node.point(i);
        bool pruned = false;
        for (uint32_t j = 0; j < l && !pruned; ++j) {
          pruned = std::fabs(double(pt[j]) - phi_q[j]) > r + eps_;
        }
        if (!pruned && VerifyFromRaf(q, node.ref(i), r) <= r) {
          out->push_back(node.oid(i));
        }
      } else {
        bool pruned = false;
        for (uint32_t j = 0; j < l && !pruned; ++j) {
          pruned = double(node.lo(i)[j]) > phi_q[j] + r + eps_ ||
                   double(node.hi(i)[j]) < phi_q[j] - r - eps_;
        }
        if (!pruned) stack.push_back(node.child(i));
      }
    }
  }
}

void OmniRTree::KnnImpl(const ObjectView& q, size_t k,
                        std::vector<Neighbor>* out) const {
  const uint32_t l = pivots_.size();
  std::vector<double> phi_q = Map(q);
  KnnHeap heap(k);
  struct Item {
    double lb;
    PageId page;
    bool operator>(const Item& o) const { return lb > o.lb; }
  };
  auto mbb_bound = [&](const float* lo, const float* hi) {
    double best = 0;
    for (uint32_t j = 0; j < l; ++j) {
      if (phi_q[j] < lo[j]) {
        best = std::max(best, double(lo[j]) - phi_q[j]);
      } else if (phi_q[j] > hi[j]) {
        best = std::max(best, phi_q[j] - double(hi[j]));
      }
    }
    return std::max(0.0, best - eps_);
  };
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  pq.push({0, rtree_->root()});
  while (!pq.empty()) {
    Item item = pq.top();
    pq.pop();
    if (item.lb > heap.radius()) break;
    RTree::NodeView node = rtree_->ReadNode(item.page);
    for (uint32_t i = 0; i < node.count; ++i) {
      if (node.is_leaf) {
        const float* pt = node.point(i);
        double lb = 0;
        for (uint32_t j = 0; j < l; ++j) {
          lb = std::max(lb, std::fabs(double(pt[j]) - phi_q[j]));
        }
        if (lb - eps_ > heap.radius()) continue;
        heap.Push(node.oid(i),
                  VerifyFromRaf(q, node.ref(i), heap.radius()));
      } else {
        double lb = std::max(item.lb, mbb_bound(node.lo(i), node.hi(i)));
        if (lb <= heap.radius()) pq.push({lb, node.child(i)});
      }
    }
  }
  heap.TakeSorted(out);
}

void OmniRTree::InsertImpl(ObjectId id) {
  if (refs_.size() <= id) refs_.resize(id + 1, RafRef{});
  std::string buf;
  data().SerializeObject(id, &buf);
  refs_[id] = raf_->Append(buf.data(), static_cast<uint32_t>(buf.size()));
  RTree::LeafEntry e;
  e.point = MapToFloat(id);
  e.oid = id;
  e.ref = refs_[id];
  rtree_->Insert(e);
  file_->Flush();
}

void OmniRTree::RemoveImpl(ObjectId id) {
  std::vector<float> pt = MapToFloat(id);
  rtree_->Remove(pt.data(), id);
  file_->Flush();
}

}  // namespace pmi
