// SPB-tree -- Space-filling curve and Pivot-based B+-tree (Chen et al.
// [12]; Section 5.4).
//
// Pre-computed pivot distances are quantized onto a grid and mapped to a
// single integer by a Hilbert curve, "maintaining spatial proximity";
// the integers are indexed by a B+-tree whose non-leaf entries store the
// (SFC-encoded) MBB of their subtree, and objects live in a separate RAF
// laid out in curve order.  The discretization both shrinks storage (no
// raw distances are kept anywhere) and weakens pruning -- exactly the
// trade-off the paper measures (low PA/storage, compdists slightly above
// M-index* on continuous metrics).  All grid comparisons here are made
// conservative (cells round outward), so no true result is ever dropped.

#ifndef PMI_EXTERNAL_SPB_TREE_H_
#define PMI_EXTERNAL_SPB_TREE_H_

#include <memory>
#include <vector>

#include "src/core/index.h"
#include "src/storage/bptree.h"
#include "src/storage/hilbert.h"
#include "src/storage/paged_file.h"
#include "src/storage/raf.h"

namespace pmi {

/// Hilbert-keyed pivot index.
class SpbTree final : public MetricIndex {
 public:
  explicit SpbTree(IndexOptions options = {}) : MetricIndex(options) {}

  std::string name() const override { return "SPB-tree"; }
  bool disk_based() const override { return true; }
  // Audited: B+-tree descent and RAF verification use pinned buffer-pool
  // handles and local scratch only; counters go through CounterScope.
  bool concurrent_queries() const override { return true; }
  size_t memory_bytes() const override { return pivots_.memory_bytes(); }
  size_t disk_bytes() const override { return file_ ? file_->bytes() : 0; }

 protected:
  void BuildImpl() override;
  void RangeImpl(const ObjectView& q, double r,
                 std::vector<ObjectId>* out) const override;
  void KnnImpl(const ObjectView& q, size_t k,
               std::vector<Neighbor>* out) const override;
  void InsertImpl(ObjectId id) override;
  void RemoveImpl(ObjectId id) override;

 private:
  uint32_t CellOf(double d) const;
  uint64_t KeyOf(const std::vector<double>& phi) const;
  double CellLo(uint32_t cell) const { return cell * cell_width_; }
  double CellHi(uint32_t cell) const { return (cell + 1) * cell_width_; }

  std::unique_ptr<PagedFile> file_;
  std::unique_ptr<BPlusTree> btree_;
  std::unique_ptr<RecordFile> raf_;
  std::unique_ptr<HilbertCurve> curve_;
  double cell_width_ = 1;
};

}  // namespace pmi

#endif  // PMI_EXTERNAL_SPB_TREE_H_
