// PM-tree -- Pivoting Metric Tree (Skopal et al. [26]; Section 5.1).
//
// An M-tree whose leaf entries additionally store the pivot mapping
// phi(o) and whose internal entries store the pivot-space MBB of their
// subtree.  Search combines three prunes: the parent-distance test and
// Lemma 2 (range-pivot, from the M-tree ball structure) plus Lemma 1
// (pivot filtering against the MBB / stored phi).  Objects live inside
// the leaf entries -- the design the paper charges for large page
// requirements on high-dimensional data (40 KB pages on Color/Synthetic).

#ifndef PMI_EXTERNAL_PM_TREE_H_
#define PMI_EXTERNAL_PM_TREE_H_

#include <memory>
#include <vector>

#include "src/core/index.h"
#include "src/storage/mtree.h"
#include "src/storage/paged_file.h"

namespace pmi {

/// Disk-resident PM-tree.
class PmTree final : public MetricIndex {
 public:
  explicit PmTree(IndexOptions options = {}) : MetricIndex(options) {}

  std::string name() const override { return "PM-tree"; }
  bool disk_based() const override { return true; }
  // Audited: search loads M-tree nodes through pinned buffer-pool
  // handles into local scratch; counters go through CounterScope.
  bool concurrent_queries() const override { return true; }
  size_t memory_bytes() const override { return pivots_.memory_bytes(); }
  size_t disk_bytes() const override { return file_ ? file_->bytes() : 0; }

 protected:
  void BuildImpl() override;
  void RangeImpl(const ObjectView& q, double r,
                 std::vector<ObjectId>* out) const override;
  void KnnImpl(const ObjectView& q, size_t k,
               std::vector<Neighbor>* out) const override;
  void InsertImpl(ObjectId id) override;
  void RemoveImpl(ObjectId id) override;

 private:
  std::vector<float> MapToFloat(const ObjectView& o) const;

  std::unique_ptr<PagedFile> file_;
  std::unique_ptr<MTree> mtree_;
  double eps_ = 0;  // float-rounding slack for phi/MBB comparisons
};

}  // namespace pmi

#endif  // PMI_EXTERNAL_PM_TREE_H_
