// The Omni-family (Traina Jr. et al. [17]; Section 5.2).
//
// All three members map objects to pivot space and keep the real objects
// in a separate random access file so index-node size is independent of
// object size:
//   * Omni-sequential-file -- "LAESA stored on disk": the mapped vectors
//     in a flat paged file, scanned wholesale per query;
//   * OmniB+-tree -- one B+-tree per pivot over d(o, p_i); a query
//     range-scans each tree and intersects the candidate id sets (the
//     redundant storage and I/O the paper notes);
//   * OmniR-tree -- one R-tree over the full mapped vectors, the member
//     the paper (and [17]) finds best and carries into Figures 16-18.

#ifndef PMI_EXTERNAL_OMNI_H_
#define PMI_EXTERNAL_OMNI_H_

#include <memory>
#include <vector>

#include "src/core/index.h"
#include "src/storage/bptree.h"
#include "src/storage/paged_file.h"
#include "src/storage/raf.h"
#include "src/storage/rtree.h"

namespace pmi {

/// Base: RAF object store + pivot mapping shared by the three members.
class OmniBase : public MetricIndex {
 public:
  explicit OmniBase(IndexOptions options) : MetricIndex(options) {}

  bool disk_based() const override { return true; }
  // Audited (all three members): queries read table/tree pages and RAF
  // records through pinned buffer-pool handles with local scratch only;
  // counters go through CounterScope.
  bool concurrent_queries() const override { return true; }
  size_t memory_bytes() const override { return pivots_.memory_bytes(); }
  size_t disk_bytes() const override { return file_ ? file_->bytes() : 0; }

 protected:
  void InitStorage();
  /// phi(o) as double vector (distance computations counted).
  std::vector<double> Map(const ObjectView& o) const;
  /// Reads object `ref` from the RAF and returns d(q, object), early-
  /// abandoning once the partial distance exceeds `upper` (exact value
  /// whenever it is <= upper; see Metric::BoundedDistance).
  double VerifyFromRaf(const ObjectView& q, const RafRef& ref,
                       double upper) const;

  std::unique_ptr<PagedFile> file_;
  std::unique_ptr<RecordFile> raf_;
  double eps_ = 0;  // float-rounding slack
};

/// Omni-sequential-file.
class OmniSequential final : public OmniBase {
 public:
  explicit OmniSequential(IndexOptions options = {}) : OmniBase(options) {}
  std::string name() const override { return "OmniSeq"; }

 protected:
  void BuildImpl() override;
  void RangeImpl(const ObjectView& q, double r,
                 std::vector<ObjectId>* out) const override;
  void KnnImpl(const ObjectView& q, size_t k,
               std::vector<Neighbor>* out) const override;
  void InsertImpl(ObjectId id) override;
  void RemoveImpl(ObjectId id) override;

 private:
  uint32_t RowBytes() const { return 16 + 8 * pivots_.size(); }
  uint32_t RowsPerPage() const { return options_.page_size / RowBytes(); }
  void AppendRow(ObjectId id, const std::vector<double>& phi,
                 const RafRef& ref);

  std::unique_ptr<PagedFile> seq_;  // the sequential file itself
  uint32_t rows_ = 0;               // including tombstones

 public:
  size_t disk_bytes() const override {
    return OmniBase::disk_bytes() + (seq_ ? seq_->bytes() : 0);
  }
};

/// OmniB+-tree: one B+-tree per pivot.
class OmniBTree final : public OmniBase {
 public:
  explicit OmniBTree(IndexOptions options = {}) : OmniBase(options) {}
  std::string name() const override { return "OmniB+tree"; }

 protected:
  void BuildImpl() override;
  void RangeImpl(const ObjectView& q, double r,
                 std::vector<ObjectId>* out) const override;
  void KnnImpl(const ObjectView& q, size_t k,
               std::vector<Neighbor>* out) const override;
  void InsertImpl(ObjectId id) override;
  void RemoveImpl(ObjectId id) override;

 private:
  void CollectCandidates(const std::vector<double>& phi_q, double r,
                         std::vector<std::pair<ObjectId, RafRef>>* out) const;

  std::vector<std::unique_ptr<BPlusTree>> trees_;  // one per pivot
};

/// OmniR-tree.
class OmniRTree final : public OmniBase {
 public:
  explicit OmniRTree(IndexOptions options = {}) : OmniBase(options) {}
  std::string name() const override { return "OmniR-tree"; }

 protected:
  void BuildImpl() override;
  void RangeImpl(const ObjectView& q, double r,
                 std::vector<ObjectId>* out) const override;
  void KnnImpl(const ObjectView& q, size_t k,
               std::vector<Neighbor>* out) const override;
  void InsertImpl(ObjectId id) override;
  void RemoveImpl(ObjectId id) override;

 private:
  std::vector<float> MapToFloat(ObjectId id) const;

  std::unique_ptr<RTree> rtree_;
  std::vector<RafRef> refs_;  // oid -> RAF slot (kept across removals)
};

}  // namespace pmi

#endif  // PMI_EXTERNAL_OMNI_H_
