// BKT -- Burkhard-Keller Tree (Burkhard & Keller [8]; Section 4.1).
//
// For discrete distance functions only.  Each internal node holds a pivot
// chosen at random from its objects (BKT is the one index the paper
// cannot put on the shared pivot set); objects are partitioned into
// equal-width distance buckets ("every sub-tree covers the same range of
// distance values", Section 4.1 discussion, which avoids empty sub-trees
// for large discrete domains).  Object ids live in the tree; payloads
// stay in the dataset table, as the paper prescribes.

#ifndef PMI_TREES_BKT_H_
#define PMI_TREES_BKT_H_

#include <memory>
#include <vector>

#include "src/core/index.h"
#include "src/core/rng.h"

namespace pmi {

/// Burkhard-Keller tree with bucketed discrete distances.
class Bkt final : public MetricIndex {
 public:
  explicit Bkt(IndexOptions options = {}) : MetricIndex(options) {}

  std::string name() const override { return "BKT"; }
  bool disk_based() const override { return false; }
  // Audited: the query path uses only local state + dist() (counters
  // are redirected per thread by the batch entry points).
  bool concurrent_queries() const override { return true; }
  size_t memory_bytes() const override;

 protected:
  void BuildImpl() override;
  void RangeImpl(const ObjectView& q, double r,
                 std::vector<ObjectId>* out) const override;
  void KnnImpl(const ObjectView& q, size_t k,
               std::vector<Neighbor>* out) const override;
  void InsertImpl(ObjectId id) override;
  void RemoveImpl(ObjectId id) override;

 private:
  struct Node {
    bool leaf = true;
    // Internal: the pivot is itself a data object; removing it from the
    // index only clears `pivot_live` (it keeps routing).
    ObjectId pivot = kInvalidObjectId;
    bool pivot_live = true;
    std::vector<std::unique_ptr<Node>> kids;  // tree_fanout buckets
    std::vector<ObjectId> members;            // leaf payload
  };

  uint32_t Bucket(double d) const;
  void BuildNode(Node* node, std::vector<ObjectId> ids);
  void SplitLeaf(Node* node);
  void InsertInto(Node* node, ObjectId id);
  bool RemoveFrom(Node* node, ObjectId id, const ObjectView& obj);
  size_t NodeBytes(const Node& node) const;

  std::unique_ptr<Node> root_;
  double bucket_width_ = 1;
  mutable Rng rng_{0};
};

}  // namespace pmi

#endif  // PMI_TREES_BKT_H_
