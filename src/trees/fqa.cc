#include "src/trees/fqa.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

#include "src/core/knn_heap.h"

namespace pmi {

uint16_t Fqa::Quantize(double d) const {
  // Discrete domains with maxD < 65536 quantize losslessly (step 1).
  double step = std::max(1.0, std::ceil(metric().max_distance() / 65535.0));
  return static_cast<uint16_t>(std::min(65535.0, d / step));
}

std::vector<uint16_t> Fqa::TupleFor(ObjectId id) {
  DistanceComputer d = dist();
  std::vector<double> phi;
  pivots_.Map(data().view(id), d, &phi);
  std::vector<uint16_t> tuple(phi.size());
  for (size_t i = 0; i < phi.size(); ++i) tuple[i] = Quantize(phi[i]);
  return tuple;
}

bool Fqa::RowLess(size_t row, const std::vector<uint16_t>& tuple) const {
  const uint32_t l = pivots_.size();
  for (uint32_t i = 0; i < l; ++i) {
    if (Coord(row, i) != tuple[i]) return Coord(row, i) < tuple[i];
  }
  return false;
}

void Fqa::BuildImpl() {
  assert(metric().discrete() &&
         "FQA is surveyed for discrete distance functions (Table 1)");
  const uint32_t l = pivots_.size();
  const uint32_t n = data().size();
  std::vector<std::vector<uint16_t>> tuples(n);
  for (ObjectId id = 0; id < n; ++id) tuples[id] = TupleFor(id);
  std::vector<ObjectId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](ObjectId a, ObjectId b) {
    return tuples[a] < tuples[b];
  });
  coords_.resize(size_t(n) * l);
  oids_.resize(n);
  for (uint32_t row = 0; row < n; ++row) {
    oids_[row] = order[row];
    for (uint32_t i = 0; i < l; ++i) {
      coords_[size_t(row) * l + i] = tuples[order[row]][i];
    }
  }
}

size_t Fqa::LowerBound(size_t lo, size_t hi, uint32_t level,
                       uint16_t value) const {
  // Coordinates at `level` are sorted within [lo, hi) because all rows
  // there share coordinates 0..level-1.
  size_t a = lo, b = hi;
  while (a < b) {
    size_t mid = (a + b) / 2;
    if (Coord(mid, level) < value) a = mid + 1; else b = mid;
  }
  return a;
}

size_t Fqa::UpperBound(size_t lo, size_t hi, uint32_t level,
                       uint16_t value) const {
  size_t a = lo, b = hi;
  while (a < b) {
    size_t mid = (a + b) / 2;
    if (Coord(mid, level) <= value) a = mid + 1; else b = mid;
  }
  return a;
}

void Fqa::RangeImpl(const ObjectView& q, double r,
                    std::vector<ObjectId>* out) const {
  const uint32_t l = pivots_.size();
  DistanceComputer d = dist();
  std::vector<double> phi_q;
  pivots_.Map(q, d, &phi_q);
  double step = std::max(1.0, std::ceil(metric().max_distance() / 65535.0));

  struct Frame {
    size_t lo, hi;
    uint32_t level;
  };
  std::vector<Frame> stack{{0, oids_.size(), 0}};
  while (!stack.empty()) {
    auto [lo, hi, level] = stack.back();
    stack.pop_back();
    if (lo >= hi) continue;
    if (level == l) {
      for (size_t row = lo; row < hi; ++row) {
        if (d.Bounded(q, data().view(oids_[row]), r) <= r) {
          out->push_back(oids_[row]);
        }
      }
      continue;
    }
    // Quantized window [vlo, vhi]: value v covers distances
    // [v*step, (v+1)*step), so the window is widened conservatively.
    double dlo = std::max(0.0, phi_q[level] - r);
    double dhi = phi_q[level] + r;
    uint16_t vlo = static_cast<uint16_t>(
        std::min(65535.0, std::floor(dlo / step)));
    uint16_t vhi = static_cast<uint16_t>(
        std::min(65535.0, std::floor(dhi / step)));
    // Jump between the values actually present in the window: the old
    // value-by-value sweep ran a binary search for every integer in
    // [vlo, vhi] -- ~65k probes per node on near-continuous quantized
    // domains -- where the data holds only a handful of distinct runs.
    size_t cursor = LowerBound(lo, hi, level, vlo);
    while (cursor < hi) {
      const uint16_t v = Coord(cursor, level);
      if (v > vhi) break;
      const size_t e = UpperBound(cursor, hi, level, v);
      stack.push_back({cursor, e, level + 1});
      cursor = e;
    }
  }
}

void Fqa::KnnImpl(const ObjectView& q, size_t k,
                  std::vector<Neighbor>* out) const {
  const uint32_t l = pivots_.size();
  DistanceComputer d = dist();
  std::vector<double> phi_q;
  pivots_.Map(q, d, &phi_q);
  double step = std::max(1.0, std::ceil(metric().max_distance() / 65535.0));
  KnnHeap heap(k);

  struct Frame {
    size_t lo, hi;
    uint32_t level;
    double lb;
  };
  // DFS with live radius pruning (runs are visited nearest-value first
  // inside each level to tighten the radius early).
  std::vector<Frame> stack{{0, oids_.size(), 0, 0}};
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    if (f.lo >= f.hi || f.lb > heap.radius()) continue;
    if (f.level == l) {
      for (size_t row = f.lo; row < f.hi; ++row) {
        heap.Push(oids_[row],
                  d.Bounded(q, data().view(oids_[row]), heap.radius()));
      }
      continue;
    }
    double radius = heap.radius();
    double dlo = std::max(0.0, phi_q[f.level] - radius);
    double dhi = std::min(metric().max_distance(), phi_q[f.level] + radius);
    uint32_t vlo = static_cast<uint32_t>(std::floor(
        std::min(65535.0, dlo / step)));
    uint32_t vhi = static_cast<uint32_t>(std::floor(
        std::min(65535.0, dhi / step)));
    // Collect runs, then push farthest-first so the nearest run is
    // processed first (LIFO stack).
    std::vector<Frame> runs;
    size_t cursor = LowerBound(f.lo, f.hi, f.level,
                               static_cast<uint16_t>(vlo));
    while (cursor < f.hi) {  // present-values jump (see RangeImpl)
      const uint32_t v = Coord(cursor, f.level);
      if (v > vhi) break;
      const size_t e = UpperBound(cursor, f.hi, f.level,
                                  static_cast<uint16_t>(v));
      double cell_lo = v * step, cell_hi = (v + 1) * step;
      double gap = 0;
      if (phi_q[f.level] < cell_lo) gap = cell_lo - phi_q[f.level];
      if (phi_q[f.level] > cell_hi) gap = phi_q[f.level] - cell_hi;
      runs.push_back({cursor, e, f.level + 1, std::max(f.lb, gap)});
      cursor = e;
    }
    std::sort(runs.begin(), runs.end(),
              [](const Frame& a, const Frame& b) { return a.lb > b.lb; });
    for (const Frame& run : runs) stack.push_back(run);
  }
  heap.TakeSorted(out);
}

std::unique_ptr<MetricIndex> Fqa::Clone() const {
  auto clone = std::make_unique<Fqa>(options_);
  clone->CopyBaseFrom(*this);
  clone->coords_ = coords_;
  clone->oids_ = oids_;
  return clone;
}

void Fqa::InsertImpl(ObjectId id) {
  const uint32_t l = pivots_.size();
  std::vector<uint16_t> tuple = TupleFor(id);
  size_t a = 0, b = oids_.size();
  while (a < b) {
    size_t mid = (a + b) / 2;
    if (RowLess(mid, tuple)) a = mid + 1; else b = mid;
  }
  oids_.insert(oids_.begin() + a, id);
  coords_.insert(coords_.begin() + a * l, tuple.begin(), tuple.end());
}

void Fqa::RemoveImpl(ObjectId id) {
  const uint32_t l = pivots_.size();
  for (size_t row = 0; row < oids_.size(); ++row) {
    if (oids_[row] != id) continue;
    oids_.erase(oids_.begin() + row);
    coords_.erase(coords_.begin() + row * l, coords_.begin() + (row + 1) * l);
    return;
  }
}

size_t Fqa::memory_bytes() const {
  return coords_.size() * sizeof(uint16_t) + oids_.size() * sizeof(ObjectId) +
         pivots_.memory_bytes() + data().total_payload_bytes();
}

}  // namespace pmi
