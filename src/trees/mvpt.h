// VPT / MVPT -- (Multi-)Vantage-Point Tree (Yianilos [29], Bozkaya &
// Ozsoyoglu [5]; Section 4.3).
//
// A balanced m-ary tree for continuous distance functions: at each level
// the objects are split into m equal-count groups by quantiles of their
// distance to that level's pivot.  Following the paper's equal-footing
// setup, nodes of a level share the same pivot (p_i from the shared set
// at level i), only the m-1 split values are stored per node, and the
// paper's default arity is m = 5 (VPT is the m = 2 special case).

#ifndef PMI_TREES_MVPT_H_
#define PMI_TREES_MVPT_H_

#include <memory>
#include <vector>

#include "src/core/index.h"

namespace pmi {

/// Multi-vantage-point tree over the shared pivots.
class Mvpt final : public MetricIndex {
 public:
  /// `arity_override` of 0 uses options.mvpt_arity (paper default 5);
  /// pass 2 for a classic VPT.
  explicit Mvpt(IndexOptions options = {}, uint32_t arity_override = 0)
      : MetricIndex(options),
        arity_(arity_override ? arity_override : options.mvpt_arity) {}

  std::string name() const override { return arity_ == 2 ? "VPT" : "MVPT"; }
  bool disk_based() const override { return false; }
  // Audited: the query path uses only local state + dist() (counters
  // are redirected per thread by the batch entry points).
  bool concurrent_queries() const override { return true; }
  /// Deep copy of the node tree -- joins the tree family to the
  /// epoch-versioned read/write core (clone-apply-publish).  Node
  /// payloads are plain ids and split values, so the copy shares only
  /// the base binding (dataset/metric/pivots) with the source.
  std::unique_ptr<MetricIndex> Clone() const override;
  size_t memory_bytes() const override;

 protected:
  void BuildImpl() override;
  void RangeImpl(const ObjectView& q, double r,
                 std::vector<ObjectId>* out) const override;
  void KnnImpl(const ObjectView& q, size_t k,
               std::vector<Neighbor>* out) const override;
  void InsertImpl(ObjectId id) override;
  void RemoveImpl(ObjectId id) override;
  Status SaveImpl(ByteSink* out) const override;
  Status LoadImpl(ByteSource* in) override;

 private:
  struct Node {
    bool leaf = true;
    // bounds[i], bounds[i+1] bracket child i (inclusive: quantile ties
    // may straddle a boundary, so intervals share endpoints).
    std::vector<double> bounds;
    std::vector<std::unique_ptr<Node>> kids;
    std::vector<ObjectId> members;
  };

  static std::unique_ptr<Node> CloneNode(const Node& node);
  void BuildNode(Node* node, std::vector<ObjectId> ids, uint32_t level);
  void SaveNode(const Node& node, ByteSink* out) const;
  Status LoadNode(Node* node, ByteSource* in, uint32_t depth);
  void InsertInto(Node* node, ObjectId id, uint32_t level);
  bool RemoveFrom(Node* node, ObjectId id, const ObjectView& obj,
                  uint32_t level);
  size_t NodeBytes(const Node& node) const;

  uint32_t arity_;
  std::unique_ptr<Node> root_;
};

}  // namespace pmi

#endif  // PMI_TREES_MVPT_H_
