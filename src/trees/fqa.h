// FQA -- Fixed Queries Array (Chavez et al. [11]; Table 1).
//
// The array form of FQT: every object's pivot distances are quantized
// and the objects sorted lexicographically by the resulting tuples, so
// each FQT "subtree" is a contiguous run locatable by binary search.
// Same traversal logic as FQT, a fraction of the memory (the paper's
// survey groups it with the discrete-domain main-memory indexes).

#ifndef PMI_TREES_FQA_H_
#define PMI_TREES_FQA_H_

#include <vector>

#include "src/core/index.h"

namespace pmi {

/// Fixed-queries array over the shared pivots.
class Fqa final : public MetricIndex {
 public:
  explicit Fqa(IndexOptions options = {}) : MetricIndex(options) {}

  std::string name() const override { return "FQA"; }
  bool disk_based() const override { return false; }
  // Audited: the query path uses only local state + dist() (counters
  // are redirected per thread by the batch entry points).
  bool concurrent_queries() const override { return true; }
  std::unique_ptr<MetricIndex> Clone() const override;
  size_t memory_bytes() const override;

 protected:
  void BuildImpl() override;
  void RangeImpl(const ObjectView& q, double r,
                 std::vector<ObjectId>* out) const override;
  void KnnImpl(const ObjectView& q, size_t k,
               std::vector<Neighbor>* out) const override;
  void InsertImpl(ObjectId id) override;
  void RemoveImpl(ObjectId id) override;

 private:
  uint16_t Quantize(double d) const;
  /// Coordinate `level` of row `row`.
  uint16_t Coord(size_t row, uint32_t level) const {
    return coords_[row * pivots_.size() + level];
  }
  /// Lexicographic row comparison against a full tuple.
  bool RowLess(size_t row, const std::vector<uint16_t>& tuple) const;
  std::vector<uint16_t> TupleFor(ObjectId id);

  /// First row in [lo, hi) whose `level` coordinate is >= / > `value`,
  /// inside a range that shares coordinates 0..level-1 (so the column is
  /// sorted there).  The traversal walks the quantized window by jumping
  /// between the values actually present -- one O(log n) probe per
  /// nonempty run -- instead of binary-searching every integer in
  /// [vlo, vhi].
  size_t LowerBound(size_t lo, size_t hi, uint32_t level,
                    uint16_t value) const;
  size_t UpperBound(size_t lo, size_t hi, uint32_t level,
                    uint16_t value) const;

  std::vector<uint16_t> coords_;  // rows x |P|, lexicographically sorted
  std::vector<ObjectId> oids_;
};

}  // namespace pmi

#endif  // PMI_TREES_FQA_H_
