#include "src/trees/bkt.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <queue>

#include "src/core/knn_heap.h"

namespace pmi {
namespace {

/// Distance from value `d` to the interval [lo, hi].
double IntervalDist(double d, double lo, double hi) {
  if (d < lo) return lo - d;
  if (d > hi) return d - hi;
  return 0;
}

}  // namespace

uint32_t Bkt::Bucket(double d) const {
  uint32_t b = static_cast<uint32_t>(d / bucket_width_);
  return std::min(b, options_.tree_fanout - 1);
}

void Bkt::BuildImpl() {
  assert(metric().discrete() &&
         "BKT supports discrete distance functions only (Section 4.1)");
  rng_.seed(options_.seed ^ 0xb17);
  bucket_width_ =
      std::max(1.0, std::ceil(metric().max_distance() / options_.tree_fanout));
  std::vector<ObjectId> ids(data().size());
  for (ObjectId i = 0; i < data().size(); ++i) ids[i] = i;
  root_ = std::make_unique<Node>();
  BuildNode(root_.get(), std::move(ids));
}

void Bkt::BuildNode(Node* node, std::vector<ObjectId> ids) {
  if (ids.size() <= options_.tree_leaf_capacity) {
    node->leaf = true;
    node->members = std::move(ids);
    return;
  }
  node->leaf = false;
  // Random pivot drawn from the node's own objects.
  size_t pi = rng_() % ids.size();
  node->pivot = ids[pi];
  ids[pi] = ids.back();
  ids.pop_back();
  node->kids.resize(options_.tree_fanout);
  DistanceComputer d = dist();
  ObjectView pv = data().view(node->pivot);
  std::vector<std::vector<ObjectId>> buckets(options_.tree_fanout);
  for (ObjectId id : ids) {
    buckets[Bucket(d(pv, data().view(id)))].push_back(id);
  }
  for (uint32_t b = 0; b < options_.tree_fanout; ++b) {
    if (buckets[b].empty()) continue;
    node->kids[b] = std::make_unique<Node>();
    BuildNode(node->kids[b].get(), std::move(buckets[b]));
  }
}

void Bkt::RangeImpl(const ObjectView& q, double r,
                    std::vector<ObjectId>* out) const {
  if (!root_) return;
  DistanceComputer d = dist();
  std::vector<const Node*> stack{root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    if (node->leaf) {
      for (ObjectId id : node->members) {
        if (d.Bounded(q, data().view(id), r) <= r) out->push_back(id);
      }
      continue;
    }
    // Pivot distances route into buckets, so the full value is needed.
    double dq = d(q, data().view(node->pivot));
    if (node->pivot_live && dq <= r) out->push_back(node->pivot);
    for (uint32_t b = 0; b < node->kids.size(); ++b) {
      if (!node->kids[b]) continue;
      double lo = b * bucket_width_;
      double hi = lo + bucket_width_;
      if (IntervalDist(dq, lo, hi) <= r) stack.push_back(node->kids[b].get());
    }
  }
}

void Bkt::KnnImpl(const ObjectView& q, size_t k,
                  std::vector<Neighbor>* out) const {
  if (!root_) return;
  DistanceComputer d = dist();
  KnnHeap heap(k);
  using Item = std::pair<double, const Node*>;  // (lower bound, node)
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  pq.push({0, root_.get()});
  while (!pq.empty()) {
    auto [lb, node] = pq.top();
    pq.pop();
    if (lb > heap.radius()) break;  // best-first: nothing closer remains
    if (node->leaf) {
      for (ObjectId id : node->members) {
        heap.Push(id, d.Bounded(q, data().view(id), heap.radius()));
      }
      continue;
    }
    double dq = d(q, data().view(node->pivot));
    if (node->pivot_live) heap.Push(node->pivot, dq);
    for (uint32_t b = 0; b < node->kids.size(); ++b) {
      if (!node->kids[b]) continue;
      double lo = b * bucket_width_;
      double hi = lo + bucket_width_;
      double child_lb = std::max(lb, IntervalDist(dq, lo, hi));
      if (child_lb <= heap.radius()) {
        pq.push({child_lb, node->kids[b].get()});
      }
    }
  }
  heap.TakeSorted(out);
}

void Bkt::SplitLeaf(Node* node) {
  std::vector<ObjectId> ids = std::move(node->members);
  node->members.clear();
  BuildNode(node, std::move(ids));
}

void Bkt::InsertInto(Node* node, ObjectId id) {
  if (node->leaf) {
    node->members.push_back(id);
    if (node->members.size() > options_.tree_leaf_capacity) SplitLeaf(node);
    return;
  }
  DistanceComputer d = dist();
  double dd = d(data().view(node->pivot), data().view(id));
  if (dd == 0 && node->pivot == id && !node->pivot_live) {
    node->pivot_live = true;  // resurrecting the routing object itself
    return;
  }
  uint32_t b = Bucket(dd);
  if (!node->kids[b]) node->kids[b] = std::make_unique<Node>();
  InsertInto(node->kids[b].get(), id);
}

bool Bkt::RemoveFrom(Node* node, ObjectId id, const ObjectView& obj) {
  if (node->leaf) {
    auto it = std::find(node->members.begin(), node->members.end(), id);
    if (it == node->members.end()) return false;
    node->members.erase(it);
    return true;
  }
  if (node->pivot == id) {
    if (!node->pivot_live) return false;
    node->pivot_live = false;  // keeps routing, leaves the result set
    return true;
  }
  DistanceComputer d = dist();
  uint32_t b = Bucket(d(data().view(node->pivot), obj));
  if (!node->kids[b]) return false;
  return RemoveFrom(node->kids[b].get(), id, obj);
}

void Bkt::InsertImpl(ObjectId id) { InsertInto(root_.get(), id); }

void Bkt::RemoveImpl(ObjectId id) {
  RemoveFrom(root_.get(), id, data().view(id));
}

size_t Bkt::NodeBytes(const Node& node) const {
  size_t n = sizeof(Node) + node.members.capacity() * sizeof(ObjectId) +
             node.kids.capacity() * sizeof(std::unique_ptr<Node>);
  for (const auto& kid : node.kids) {
    if (kid) n += NodeBytes(*kid);
  }
  return n;
}

size_t Bkt::memory_bytes() const {
  return (root_ ? NodeBytes(*root_) : 0) + data().total_payload_bytes();
}

}  // namespace pmi
