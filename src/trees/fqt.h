// FQT -- Fixed Queries Tree (Baeza-Yates et al. [4]; Section 4.2).
//
// Like BKT but with one pivot per tree level, taken from the shared pivot
// set (p_i at level i, so "the tree-level is set to the number of
// pivots").  Because all nodes of a level share the pivot, a query
// computes just |P| query-pivot distances for the whole traversal.
// Discrete distance functions only.

#ifndef PMI_TREES_FQT_H_
#define PMI_TREES_FQT_H_

#include <memory>
#include <vector>

#include "src/core/index.h"

namespace pmi {

/// Fixed-queries tree over the shared pivots.
class Fqt final : public MetricIndex {
 public:
  explicit Fqt(IndexOptions options = {}) : MetricIndex(options) {}

  std::string name() const override { return "FQT"; }
  bool disk_based() const override { return false; }
  // Audited: the query path uses only local state + dist() (counters
  // are redirected per thread by the batch entry points).
  bool concurrent_queries() const override { return true; }
  size_t memory_bytes() const override;

 protected:
  void BuildImpl() override;
  void RangeImpl(const ObjectView& q, double r,
                 std::vector<ObjectId>* out) const override;
  void KnnImpl(const ObjectView& q, size_t k,
               std::vector<Neighbor>* out) const override;
  void InsertImpl(ObjectId id) override;
  void RemoveImpl(ObjectId id) override;

 private:
  struct Node {
    bool leaf = true;
    std::vector<std::unique_ptr<Node>> kids;
    std::vector<ObjectId> members;
  };

  uint32_t Bucket(double d) const;
  void BuildNode(Node* node, std::vector<ObjectId> ids, uint32_t level);
  void InsertInto(Node* node, ObjectId id, uint32_t level);
  bool RemoveFrom(Node* node, ObjectId id, const ObjectView& obj,
                  uint32_t level);
  size_t NodeBytes(const Node& node) const;

  std::unique_ptr<Node> root_;
  double bucket_width_ = 1;
};

}  // namespace pmi

#endif  // PMI_TREES_FQT_H_
