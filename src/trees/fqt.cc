#include "src/trees/fqt.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <queue>

#include "src/core/knn_heap.h"

namespace pmi {
namespace {

double IntervalDist(double d, double lo, double hi) {
  if (d < lo) return lo - d;
  if (d > hi) return d - hi;
  return 0;
}

}  // namespace

uint32_t Fqt::Bucket(double d) const {
  uint32_t b = static_cast<uint32_t>(d / bucket_width_);
  return std::min(b, options_.tree_fanout - 1);
}

void Fqt::BuildImpl() {
  assert(metric().discrete() &&
         "FQT supports discrete distance functions only (Section 4.2)");
  assert(!pivots_.empty());
  bucket_width_ =
      std::max(1.0, std::ceil(metric().max_distance() / options_.tree_fanout));
  std::vector<ObjectId> ids(data().size());
  for (ObjectId i = 0; i < data().size(); ++i) ids[i] = i;
  root_ = std::make_unique<Node>();
  BuildNode(root_.get(), std::move(ids), 0);
}

void Fqt::BuildNode(Node* node, std::vector<ObjectId> ids, uint32_t level) {
  // Leaves absorb whole subtrees once all pivots are used up.
  if (ids.size() <= options_.tree_leaf_capacity || level >= pivots_.size()) {
    node->leaf = true;
    node->members = std::move(ids);
    return;
  }
  node->leaf = false;
  node->kids.resize(options_.tree_fanout);
  DistanceComputer d = dist();
  ObjectView pv = pivots_.pivot(level);
  std::vector<std::vector<ObjectId>> buckets(options_.tree_fanout);
  for (ObjectId id : ids) {
    buckets[Bucket(d(pv, data().view(id)))].push_back(id);
  }
  for (uint32_t b = 0; b < options_.tree_fanout; ++b) {
    if (buckets[b].empty()) continue;
    node->kids[b] = std::make_unique<Node>();
    BuildNode(node->kids[b].get(), std::move(buckets[b]), level + 1);
  }
}

void Fqt::RangeImpl(const ObjectView& q, double r,
                    std::vector<ObjectId>* out) const {
  if (!root_) return;
  DistanceComputer d = dist();
  std::vector<double> phi_q;
  pivots_.Map(q, d, &phi_q);  // one distance per level, up front
  struct Frame {
    const Node* node;
    uint32_t level;
  };
  std::vector<Frame> stack{{root_.get(), 0}};
  while (!stack.empty()) {
    auto [node, level] = stack.back();
    stack.pop_back();
    if (node->leaf) {
      for (ObjectId id : node->members) {
        if (d.Bounded(q, data().view(id), r) <= r) out->push_back(id);
      }
      continue;
    }
    for (uint32_t b = 0; b < node->kids.size(); ++b) {
      if (!node->kids[b]) continue;
      double lo = b * bucket_width_;
      double hi = lo + bucket_width_;
      if (IntervalDist(phi_q[level], lo, hi) <= r) {
        stack.push_back({node->kids[b].get(), level + 1});
      }
    }
  }
}

void Fqt::KnnImpl(const ObjectView& q, size_t k,
                  std::vector<Neighbor>* out) const {
  if (!root_) return;
  DistanceComputer d = dist();
  std::vector<double> phi_q;
  pivots_.Map(q, d, &phi_q);
  KnnHeap heap(k);
  struct Item {
    double lb;
    const Node* node;
    uint32_t level;
    bool operator>(const Item& o) const { return lb > o.lb; }
  };
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  pq.push({0, root_.get(), 0});
  while (!pq.empty()) {
    Item item = pq.top();
    pq.pop();
    if (item.lb > heap.radius()) break;
    if (item.node->leaf) {
      for (ObjectId id : item.node->members) {
        heap.Push(id, d.Bounded(q, data().view(id), heap.radius()));
      }
      continue;
    }
    for (uint32_t b = 0; b < item.node->kids.size(); ++b) {
      if (!item.node->kids[b]) continue;
      double lo = b * bucket_width_;
      double hi = lo + bucket_width_;
      double child_lb =
          std::max(item.lb, IntervalDist(phi_q[item.level], lo, hi));
      if (child_lb <= heap.radius()) {
        pq.push({child_lb, item.node->kids[b].get(), item.level + 1});
      }
    }
  }
  heap.TakeSorted(out);
}

void Fqt::InsertInto(Node* node, ObjectId id, uint32_t level) {
  if (node->leaf) {
    node->members.push_back(id);
    if (node->members.size() > options_.tree_leaf_capacity &&
        level < pivots_.size()) {
      std::vector<ObjectId> ids = std::move(node->members);
      node->members.clear();
      BuildNode(node, std::move(ids), level);
    }
    return;
  }
  DistanceComputer d = dist();
  uint32_t b = Bucket(d(pivots_.pivot(level), data().view(id)));
  if (!node->kids[b]) node->kids[b] = std::make_unique<Node>();
  InsertInto(node->kids[b].get(), id, level + 1);
}

bool Fqt::RemoveFrom(Node* node, ObjectId id, const ObjectView& obj,
                     uint32_t level) {
  if (node->leaf) {
    auto it = std::find(node->members.begin(), node->members.end(), id);
    if (it == node->members.end()) return false;
    node->members.erase(it);
    return true;
  }
  DistanceComputer d = dist();
  uint32_t b = Bucket(d(pivots_.pivot(level), obj));
  if (!node->kids[b]) return false;
  return RemoveFrom(node->kids[b].get(), id, obj, level + 1);
}

void Fqt::InsertImpl(ObjectId id) { InsertInto(root_.get(), id, 0); }

void Fqt::RemoveImpl(ObjectId id) {
  RemoveFrom(root_.get(), id, data().view(id), 0);
}

size_t Fqt::NodeBytes(const Node& node) const {
  size_t n = sizeof(Node) + node.members.capacity() * sizeof(ObjectId) +
             node.kids.capacity() * sizeof(std::unique_ptr<Node>);
  for (const auto& kid : node.kids) {
    if (kid) n += NodeBytes(*kid);
  }
  return n;
}

size_t Fqt::memory_bytes() const {
  return (root_ ? NodeBytes(*root_) : 0) + pivots_.memory_bytes() +
         data().total_payload_bytes();
}

}  // namespace pmi
