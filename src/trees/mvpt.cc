#include "src/trees/mvpt.h"

#include <algorithm>
#include <cassert>
#include <queue>

#include "src/core/knn_heap.h"

namespace pmi {
namespace {

double IntervalDist(double d, double lo, double hi) {
  if (d < lo) return lo - d;
  if (d > hi) return d - hi;
  return 0;
}

}  // namespace

void Mvpt::BuildImpl() {
  assert(!pivots_.empty());
  std::vector<ObjectId> ids(data().size());
  for (ObjectId i = 0; i < data().size(); ++i) ids[i] = i;
  root_ = std::make_unique<Node>();
  BuildNode(root_.get(), std::move(ids), 0);
}

void Mvpt::BuildNode(Node* node, std::vector<ObjectId> ids, uint32_t level) {
  if (ids.size() <= options_.tree_leaf_capacity ||
      ids.size() < size_t(arity_) * 2 || level >= pivots_.size()) {
    node->leaf = true;
    node->members = std::move(ids);
    return;
  }
  node->leaf = false;
  DistanceComputer d = dist();
  ObjectView pv = pivots_.pivot(level);
  std::vector<std::pair<double, ObjectId>> dists;
  dists.reserve(ids.size());
  for (ObjectId id : ids) dists.push_back({d(pv, data().view(id)), id});
  std::sort(dists.begin(), dists.end());

  // Equal-count quantile groups: child i holds ranks [i*sz, (i+1)*sz).
  node->bounds.resize(arity_ + 1);
  node->kids.resize(arity_);
  node->bounds[0] = dists.front().first;
  node->bounds[arity_] = dists.back().first;
  const size_t per = (dists.size() + arity_ - 1) / arity_;
  for (uint32_t i = 0; i < arity_; ++i) {
    size_t b = std::min(dists.size(), i * per);
    size_t e = std::min(dists.size(), (i + 1) * per);
    if (i > 0) node->bounds[i] = b < dists.size() ? dists[b].first : dists.back().first;
    if (b >= e) continue;
    std::vector<ObjectId> sub;
    sub.reserve(e - b);
    for (size_t j = b; j < e; ++j) sub.push_back(dists[j].second);
    node->kids[i] = std::make_unique<Node>();
    BuildNode(node->kids[i].get(), std::move(sub), level + 1);
  }
}

void Mvpt::RangeImpl(const ObjectView& q, double r,
                     std::vector<ObjectId>* out) const {
  if (!root_) return;
  DistanceComputer d = dist();
  std::vector<double> phi_q;
  pivots_.Map(q, d, &phi_q);
  struct Frame {
    const Node* node;
    uint32_t level;
  };
  std::vector<Frame> stack{{root_.get(), 0}};
  while (!stack.empty()) {
    auto [node, level] = stack.back();
    stack.pop_back();
    if (node->leaf) {
      for (ObjectId id : node->members) {
        if (d.Bounded(q, data().view(id), r) <= r) out->push_back(id);
      }
      continue;
    }
    for (uint32_t i = 0; i < node->kids.size(); ++i) {
      if (!node->kids[i]) continue;
      if (IntervalDist(phi_q[level], node->bounds[i], node->bounds[i + 1]) <=
          r) {
        stack.push_back({node->kids[i].get(), level + 1});
      }
    }
  }
}

void Mvpt::KnnImpl(const ObjectView& q, size_t k,
                   std::vector<Neighbor>* out) const {
  if (!root_) return;
  DistanceComputer d = dist();
  std::vector<double> phi_q;
  pivots_.Map(q, d, &phi_q);
  KnnHeap heap(k);
  struct Item {
    double lb;
    const Node* node;
    uint32_t level;
    bool operator>(const Item& o) const { return lb > o.lb; }
  };
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  pq.push({0, root_.get(), 0});
  while (!pq.empty()) {
    Item item = pq.top();
    pq.pop();
    if (item.lb > heap.radius()) break;
    if (item.node->leaf) {
      for (ObjectId id : item.node->members) {
        heap.Push(id, d.Bounded(q, data().view(id), heap.radius()));
      }
      continue;
    }
    for (uint32_t i = 0; i < item.node->kids.size(); ++i) {
      if (!item.node->kids[i]) continue;
      double child_lb = std::max(
          item.lb, IntervalDist(phi_q[item.level], item.node->bounds[i],
                                item.node->bounds[i + 1]));
      if (child_lb <= heap.radius()) {
        pq.push({child_lb, item.node->kids[i].get(), item.level + 1});
      }
    }
  }
  heap.TakeSorted(out);
}

void Mvpt::InsertInto(Node* node, ObjectId id, uint32_t level) {
  if (node->leaf) {
    node->members.push_back(id);
    if (node->members.size() > options_.tree_leaf_capacity &&
        level < pivots_.size()) {
      std::vector<ObjectId> ids = std::move(node->members);
      node->members.clear();
      BuildNode(node, std::move(ids), level);
    }
    return;
  }
  DistanceComputer d = dist();
  double dd = d(pivots_.pivot(level), data().view(id));
  // Interior boundaries are shared between siblings and must never move
  // (shrinking a sibling's interval would orphan its members); only the
  // outermost bounds may expand to absorb out-of-range distances.
  uint32_t pick = 0;
  if (dd < node->bounds.front()) {
    node->bounds.front() = dd;
    pick = 0;
  } else if (dd > node->bounds.back()) {
    node->bounds.back() = dd;
    pick = static_cast<uint32_t>(node->kids.size()) - 1;
  } else {
    for (uint32_t i = 0; i < node->kids.size(); ++i) {
      pick = i;
      if (dd <= node->bounds[i + 1]) break;
    }
  }
  if (!node->kids[pick]) node->kids[pick] = std::make_unique<Node>();
  InsertInto(node->kids[pick].get(), id, level + 1);
}

bool Mvpt::RemoveFrom(Node* node, ObjectId id, const ObjectView& obj,
                      uint32_t level) {
  if (node->leaf) {
    auto it = std::find(node->members.begin(), node->members.end(), id);
    if (it == node->members.end()) return false;
    node->members.erase(it);
    return true;
  }
  DistanceComputer d = dist();
  double dd = d(pivots_.pivot(level), obj);
  // Boundary ties can land in either adjacent child; try all whose
  // interval contains dd.
  for (uint32_t i = 0; i < node->kids.size(); ++i) {
    if (!node->kids[i]) continue;
    if (dd < node->bounds[i] || dd > node->bounds[i + 1]) continue;
    if (RemoveFrom(node->kids[i].get(), id, obj, level + 1)) return true;
  }
  return false;
}

void Mvpt::InsertImpl(ObjectId id) { InsertInto(root_.get(), id, 0); }

void Mvpt::RemoveImpl(ObjectId id) {
  RemoveFrom(root_.get(), id, data().view(id), 0);
}

std::unique_ptr<Mvpt::Node> Mvpt::CloneNode(const Node& node) {
  auto copy = std::make_unique<Node>();
  copy->leaf = node.leaf;
  copy->bounds = node.bounds;
  copy->members = node.members;
  copy->kids.resize(node.kids.size());
  for (size_t i = 0; i < node.kids.size(); ++i) {
    if (node.kids[i]) copy->kids[i] = CloneNode(*node.kids[i]);
  }
  return copy;
}

std::unique_ptr<MetricIndex> Mvpt::Clone() const {
  auto clone = std::make_unique<Mvpt>(options_, arity_);
  clone->CopyBaseFrom(*this);
  if (root_) clone->root_ = CloneNode(*root_);
  return clone;
}

void Mvpt::SaveNode(const Node& node, ByteSink* out) const {
  out->PutU8(node.leaf ? 1 : 0);
  if (node.leaf) {
    out->PutVector(node.members);
    return;
  }
  out->PutVector(node.bounds);
  out->PutU32(static_cast<uint32_t>(node.kids.size()));
  for (const auto& kid : node.kids) {
    out->PutU8(kid ? 1 : 0);
    if (kid) SaveNode(*kid, out);
  }
}

Status Mvpt::LoadNode(Node* node, ByteSource* in, uint32_t depth) {
  // Tree depth is bounded by the pivot count (BuildNode stops splitting
  // at level == pivots_.size()); a deeper snapshot is damage, and the
  // bound keeps the recursion safe against a crafted cycle.
  if (depth > pivots_.size() + 1) {
    return DataLossError("MVPT snapshot deeper than the pivot count allows");
  }
  uint8_t leaf = 0;
  PMI_RETURN_IF_ERROR(in->GetU8(&leaf));
  node->leaf = leaf != 0;
  if (node->leaf) {
    PMI_RETURN_IF_ERROR(in->GetVector(&node->members));
    for (ObjectId id : node->members) {
      if (id >= data().size()) {
        return DataLossError("MVPT snapshot references object " +
                             std::to_string(id) + " outside the dataset");
      }
    }
    return OkStatus();
  }
  PMI_RETURN_IF_ERROR(in->GetVector(&node->bounds));
  uint32_t kids = 0;
  PMI_RETURN_IF_ERROR(in->GetU32(&kids));
  if (kids != arity_ || node->bounds.size() != size_t(arity_) + 1) {
    return DataLossError("MVPT snapshot node shape does not match arity");
  }
  node->kids.resize(kids);
  for (uint32_t i = 0; i < kids; ++i) {
    uint8_t present = 0;
    PMI_RETURN_IF_ERROR(in->GetU8(&present));
    if (present == 0) continue;
    node->kids[i] = std::make_unique<Node>();
    PMI_RETURN_IF_ERROR(LoadNode(node->kids[i].get(), in, depth + 1));
  }
  return OkStatus();
}

Status Mvpt::SaveImpl(ByteSink* out) const {
  out->PutU32(arity_);
  out->PutU8(root_ ? 1 : 0);
  if (root_) SaveNode(*root_, out);
  return OkStatus();
}

Status Mvpt::LoadImpl(ByteSource* in) {
  uint32_t arity = 0;
  PMI_RETURN_IF_ERROR(in->GetU32(&arity));
  if (arity != arity_) {
    return DataLossError("MVPT snapshot arity does not match this index");
  }
  uint8_t has_root = 0;
  PMI_RETURN_IF_ERROR(in->GetU8(&has_root));
  root_.reset();
  if (has_root != 0) {
    root_ = std::make_unique<Node>();
    PMI_RETURN_IF_ERROR(LoadNode(root_.get(), in, 0));
  }
  return OkStatus();
}

size_t Mvpt::NodeBytes(const Node& node) const {
  size_t n = sizeof(Node) + node.members.capacity() * sizeof(ObjectId) +
             node.bounds.capacity() * sizeof(double) +
             node.kids.capacity() * sizeof(std::unique_ptr<Node>);
  for (const auto& kid : node.kids) {
    if (kid) n += NodeBytes(*kid);
  }
  return n;
}

size_t Mvpt::memory_bytes() const {
  return (root_ ? NodeBytes(*root_) : 0) + pivots_.memory_bytes() +
         data().total_payload_bytes();
}

}  // namespace pmi
