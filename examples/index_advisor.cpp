// Index advisor: builds every applicable surveyed index on a workload,
// measures construction/query/update costs, and prints a recommendation
// following the selection guidance of the paper's Section 7:
//   - small dataset + complex distance  -> EPT*
//   - small dataset + cheap distance    -> MVPT
//   - large dataset / low memory        -> SPB-tree or M-index*
// Usage: example_index_advisor [la|words|color|synthetic]

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/core/pivot_selection.h"
#include "src/data/distribution.h"
#include "src/data/generators.h"
#include "src/harness/registry.h"
#include "src/harness/table_printer.h"

int main(int argc, char** argv) {
  using namespace pmi;

  BenchDatasetId ds = BenchDatasetId::kWords;
  if (argc > 1) {
    std::string arg = argv[1];
    if (arg == "la") ds = BenchDatasetId::kLa;
    else if (arg == "color") ds = BenchDatasetId::kColor;
    else if (arg == "synthetic") ds = BenchDatasetId::kSynthetic;
    else if (arg != "words") {
      std::fprintf(stderr, "usage: %s [la|words|color|synthetic]\n", argv[0]);
      return 1;
    }
  }
  BenchDataset bd = MakeBenchDataset(ds, 12000);
  DistanceDistribution distribution =
      EstimateDistribution(bd.data, *bd.metric);
  std::printf("workload: %s, %u objects, %s metric, intrinsic dim %.1f\n\n",
              bd.name.c_str(), bd.data.size(), bd.metric->name().c_str(),
              distribution.intrinsic_dim);
  PivotSet pivots = SelectSharedPivots(bd.data, *bd.metric, 5);
  double r = distribution.RadiusForSelectivity(0.05);

  TablePrinter table({"Index", "Build (s)", "MRQ compdists", "MRQ PA",
                      "kNN compdists", "kNN CPU (ms)", "Memory", "Disk"});
  struct Score {
    std::string name;
    double knn_compdists;
    double knn_ms;
    bool disk;
  };
  std::vector<Score> scores;
  for (const IndexSpec& spec : AllIndexSpecs()) {
    if (spec.name == "AESA") continue;  // quadratic storage: advisory skip
    if (spec.discrete_only && !bd.metric->discrete()) continue;
    IndexOptions opts;
    opts.page_size =
        (ds == BenchDatasetId::kColor || ds == BenchDatasetId::kSynthetic) &&
                (spec.name == "CPT" || spec.name == "PM-tree")
            ? 40960
            : 4096;
    auto index = spec.make(opts);
    OpStats build = index->Build(bd.data, *bd.metric, pivots);
    double mrq_cd = 0, mrq_pa = 0, knn_cd = 0, knn_ms = 0;
    const int kQ = 10;
    for (int q = 0; q < kQ; ++q) {
      std::vector<ObjectId> out;
      OpStats s = index->RangeQuery(bd.data.view(q * 37 % bd.data.size()), r,
                                    &out);
      mrq_cd += double(s.dist_computations) / kQ;
      mrq_pa += double(s.page_accesses()) / kQ;
      std::vector<Neighbor> nn;
      OpStats t =
          index->KnnQuery(bd.data.view(q * 53 % bd.data.size()), 20, &nn);
      knn_cd += double(t.dist_computations) / kQ;
      knn_ms += t.seconds * 1000 / kQ;
    }
    table.AddRow({spec.name, FormatF(build.seconds, 2), FormatCount(mrq_cd),
                  spec.uses_disk ? FormatCount(mrq_pa) : "-",
                  FormatCount(knn_cd), FormatMs(knn_ms),
                  FormatBytes(index->memory_bytes()),
                  spec.uses_disk ? FormatBytes(index->disk_bytes()) : "-"});
    scores.push_back({spec.name, knn_cd, knn_ms, spec.uses_disk});
  }
  table.Print();

  // Section 7 decision rule, informed by the measurements.
  bool complex_metric = bd.metric->name() == "edit" || bd.data.dim() >= 100;
  const Score* best_mem = nullptr;
  const Score* best_disk = nullptr;
  for (const Score& s : scores) {
    if (!s.disk && (best_mem == nullptr ||
                    (complex_metric ? s.knn_compdists < best_mem->knn_compdists
                                    : s.knn_ms < best_mem->knn_ms))) {
      best_mem = &s;
    }
    if (s.disk && (best_disk == nullptr ||
                   s.knn_compdists + 100 * s.knn_ms <
                       best_disk->knn_compdists + 100 * best_disk->knn_ms)) {
      best_disk = &s;
    }
  }
  std::printf("\nRecommendation (Section 7 guidance):\n");
  if (best_mem != nullptr) {
    std::printf("  fits in RAM:   %s (%s)\n", best_mem->name.c_str(),
                complex_metric ? "fewest distance computations for a complex "
                                 "distance function"
                               : "lowest CPU time for a cheap distance");
  }
  if (best_disk != nullptr) {
    std::printf("  outgrows RAM:  %s (best query profile among the "
                "disk-based indexes)\n",
                best_disk->name.c_str());
  }
  return 0;
}
