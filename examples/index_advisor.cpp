// Index advisor: builds every applicable surveyed index on a workload
// through the pmi::MetricDB facade, measures construction/query costs,
// and prints a recommendation following the selection guidance of the
// paper's Section 7:
//   - small dataset + complex distance  -> EPT*
//   - small dataset + cheap distance    -> MVPT
//   - large dataset / low memory        -> SPB-tree or M-index*
// Indexes whose preconditions fail (BKT/FQT on a continuous metric) are
// skipped via the facade's recoverable errors -- no special-casing.
// Usage: example_index_advisor [la|words|color|synthetic]

#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "src/api/metric_db.h"
#include "src/data/distribution.h"
#include "src/data/generators.h"
#include "src/harness/registry.h"
#include "src/harness/table_printer.h"

int main(int argc, char** argv) {
  using namespace pmi;

  BenchDatasetId ds = BenchDatasetId::kWords;
  if (argc > 1) {
    std::string arg = argv[1];
    if (arg == "la") ds = BenchDatasetId::kLa;
    else if (arg == "color") ds = BenchDatasetId::kColor;
    else if (arg == "synthetic") ds = BenchDatasetId::kSynthetic;
    else if (arg != "words") {
      std::fprintf(stderr, "usage: %s [la|words|color|synthetic]\n", argv[0]);
      return 1;
    }
  }
  BenchDataset bd = MakeBenchDataset(ds, 12000);
  DistanceDistribution distribution =
      EstimateDistribution(bd.data, *bd.metric);
  std::printf("workload: %s, %u objects, %s metric, intrinsic dim %.1f\n\n",
              bd.name.c_str(), bd.data.size(), bd.metric->name().c_str(),
              distribution.intrinsic_dim);
  double r = distribution.RadiusForSelectivity(0.05);

  TablePrinter table({"Index", "Build (s)", "MRQ compdists", "MRQ PA",
                      "kNN compdists", "kNN CPU (ms)", "Memory", "Disk"});
  struct Score {
    std::string name;
    double knn_compdists;
    double knn_ms;
    bool disk;
  };
  std::vector<Score> scores;
  const int kQ = 10;
  std::vector<ObjectView> mrq_queries, knn_queries;
  for (int q = 0; q < kQ; ++q) {
    mrq_queries.push_back(bd.data.view(q * 37 % bd.data.size()));
    knn_queries.push_back(bd.data.view(q * 53 % bd.data.size()));
  }
  // The paper's equal footing: every index gets the SAME shared pivot
  // set.  The first Create runs the HFI selection; the rest reuse it via
  // WithPivotSet instead of re-selecting identical pivots 15 more times.
  std::optional<PivotSet> shared_pivots;
  for (const IndexSpec& spec : AllIndexSpecs()) {
    if (spec.name == "AESA") continue;  // quadratic storage: advisory skip
    IndexOptions opts;
    opts.page_size =
        (ds == BenchDatasetId::kColor || ds == BenchDatasetId::kSynthetic) &&
                (spec.name == "CPT" || spec.name == "PM-tree")
            ? 40960
            : 4096;
    MetricDBConfig config = MetricDBConfig()
                                .WithMetric(bd.metric->name())
                                .WithIndex(spec.name)
                                .WithPivots(5)
                                .WithOptions(opts);
    if (shared_pivots.has_value()) config.WithPivotSet(*shared_pivots);
    auto db = MetricDB::Create(config, bd.data);
    if (!db.ok()) {
      // kFailedPrecondition is the expected applicability skip (BKT/FQT
      // need a discrete metric); anything else is a real problem and
      // must not silently vanish from the comparison table.
      if (db.status().code() != StatusCode::kFailedPrecondition) {
        std::fprintf(stderr, "skipping %s: %s\n", spec.name.c_str(),
                     db.status().ToString().c_str());
      }
      continue;
    }
    if (!shared_pivots.has_value()) shared_pivots = db->pivots();
    auto mrq = db->Query(QueryRequest::RangeBatch(mrq_queries, r));
    auto knn = db->Query(QueryRequest::KnnBatch(knn_queries, 20));
    if (!mrq.ok() || !knn.ok()) {
      std::fprintf(stderr, "skipping %s: query failed: %s\n",
                   spec.name.c_str(),
                   (!mrq.ok() ? mrq.status() : knn.status())
                       .ToString()
                       .c_str());
      continue;
    }
    double mrq_cd = double(mrq->stats.dist_computations) / kQ;
    double mrq_pa = double(mrq->stats.page_accesses()) / kQ;
    double knn_cd = double(knn->stats.dist_computations) / kQ;
    double knn_ms = knn->stats.seconds * 1000 / kQ;
    table.AddRow({spec.name, FormatF(db->build_stats().seconds, 2),
                  FormatCount(mrq_cd),
                  spec.uses_disk ? FormatCount(mrq_pa) : "-",
                  FormatCount(knn_cd), FormatMs(knn_ms),
                  FormatBytes(db->index().memory_bytes()),
                  spec.uses_disk ? FormatBytes(db->index().disk_bytes())
                                 : "-"});
    scores.push_back({spec.name, knn_cd, knn_ms, spec.uses_disk});
  }
  table.Print();

  // Section 7 decision rule, informed by the measurements.
  bool complex_metric = bd.metric->name() == "edit" || bd.data.dim() >= 100;
  const Score* best_mem = nullptr;
  const Score* best_disk = nullptr;
  for (const Score& s : scores) {
    if (!s.disk && (best_mem == nullptr ||
                    (complex_metric ? s.knn_compdists < best_mem->knn_compdists
                                    : s.knn_ms < best_mem->knn_ms))) {
      best_mem = &s;
    }
    if (s.disk && (best_disk == nullptr ||
                   s.knn_compdists + 100 * s.knn_ms <
                       best_disk->knn_compdists + 100 * best_disk->knn_ms)) {
      best_disk = &s;
    }
  }
  std::printf("\nRecommendation (Section 7 guidance):\n");
  if (best_mem != nullptr) {
    std::printf("  fits in RAM:   %s (%s)\n", best_mem->name.c_str(),
                complex_metric ? "fewest distance computations for a complex "
                                 "distance function"
                               : "lowest CPU time for a cheap distance");
  }
  if (best_disk != nullptr) {
    std::printf("  outgrows RAM:  %s (best query profile among the "
                "disk-based indexes)\n",
                best_disk->name.c_str());
  }
  return 0;
}
