// Multimedia retrieval scenario: similarity search over MPEG-7-style
// image feature vectors (282-d, L1), the paper's Color workload.
// Contrasts the index the paper recommends for complex distance
// functions (EPT*, lowest compdists) with the one it recommends for
// large datasets (SPB-tree, lowest I/O), and shows the pivot-validation
// effect on range queries.

#include <cstdio>

#include "src/core/pivot_selection.h"
#include "src/data/distribution.h"
#include "src/data/generators.h"
#include "src/harness/registry.h"

int main() {
  using namespace pmi;

  BenchDataset bd = MakeBenchDataset(BenchDatasetId::kColor, 8000);
  std::printf("image library: %u feature vectors (282-d, L1)\n",
              bd.data.size());
  DistanceDistribution dist = EstimateDistribution(bd.data, *bd.metric);
  PivotSet pivots = SelectSharedPivots(bd.data, *bd.metric, 5);

  IndexOptions opts;
  auto ept = MakeIndex("EPT*", opts);
  auto spb = MakeIndex("SPB-tree", opts);
  OpStats be = ept->Build(bd.data, *bd.metric, pivots);
  OpStats bs = spb->Build(bd.data, *bd.metric, pivots);
  std::printf("EPT* build: %.2fs  SPB-tree build: %.2fs\n", be.seconds,
              bs.seconds);

  // "Find images similar to this one": 1%-selectivity range query.
  double r = dist.RadiusForSelectivity(0.01);
  std::printf("\nrange r = %.0f (~1%% of library)\n", r);
  double total_e = 0, total_s = 0, pa_s = 0;
  size_t hits = 0;
  for (ObjectId q = 0; q < 15; ++q) {
    std::vector<ObjectId> out;
    OpStats se = ept->RangeQuery(bd.data.view(q), r, &out);
    OpStats ss = spb->RangeQuery(bd.data.view(q), r, &out);
    total_e += double(se.dist_computations);
    total_s += double(ss.dist_computations);
    pa_s += double(ss.page_accesses());
    hits += out.size();
  }
  std::printf("avg per query: EPT* %.0f compdists (in memory) | SPB-tree "
              "%.0f compdists + %.0f page accesses | %.1f hits\n",
              total_e / 15, total_s / 15, pa_s / 15, double(hits) / 15);

  // "Show the 10 most similar images".
  std::vector<Neighbor> knn;
  OpStats ke = ept->KnnQuery(bd.data.view(42), 10, &knn);
  std::printf("\n10-NN of image 42 via EPT* (%llu compdists):\n",
              (unsigned long long)ke.dist_computations);
  for (const Neighbor& nb : knn) {
    std::printf("  image %-6u distance %.1f\n", nb.id, nb.dist);
  }
  std::printf("\nPaper guidance (Section 7): EPT* for small datasets with\n"
              "complex distances; SPB-tree when the dataset outgrows RAM.\n");
  return 0;
}
