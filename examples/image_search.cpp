// Multimedia retrieval scenario: similarity search over MPEG-7-style
// image feature vectors (282-d, L1), the paper's Color workload, through
// the pmi::MetricDB facade.  Contrasts the index the paper recommends
// for complex distance functions (EPT*, lowest compdists) with the one
// it recommends for large datasets (SPB-tree, lowest I/O), and shows the
// batch query API: all 15 "find similar images" requests go out as one
// QueryRequest.

#include <cstdio>

#include "src/api/metric_db.h"
#include "src/data/distribution.h"
#include "src/data/generators.h"

int main() {
  using namespace pmi;

  BenchDataset bd = MakeBenchDataset(BenchDatasetId::kColor, 8000);
  std::printf("image library: %u feature vectors (282-d, L1)\n",
              bd.data.size());
  DistanceDistribution dist = EstimateDistribution(bd.data, *bd.metric);

  auto ept = MetricDB::Create(
      MetricDBConfig().WithMetric("L1").WithIndex("EPT*").WithPivots(5),
      bd.data);
  auto spb = MetricDB::Create(
      MetricDBConfig().WithMetric("L1").WithIndex("SPB-tree").WithPivots(5),
      bd.data);
  if (!ept.ok() || !spb.ok()) {
    std::fprintf(stderr, "create failed: %s\n",
                 (!ept.ok() ? ept.status() : spb.status()).ToString().c_str());
    return 1;
  }
  std::printf("EPT* build: %.2fs  SPB-tree build: %.2fs\n",
              ept->build_stats().seconds, spb->build_stats().seconds);

  // "Find images similar to this one": 1%-selectivity range queries,
  // batched -- one request, one result, whole-batch costs.
  double r = dist.RadiusForSelectivity(0.01);
  std::printf("\nrange r = %.0f (~1%% of library), batch of 15 queries\n", r);
  std::vector<ObjectView> queries;
  for (ObjectId q = 0; q < 15; ++q) queries.push_back(ept->dataset().view(q));
  auto re = ept->Query(QueryRequest::RangeBatch(queries, r));
  auto rs = spb->Query(QueryRequest::RangeBatch(queries, r));
  if (!re.ok() || !rs.ok()) return 1;
  size_t hits = 0;
  for (const auto& ids : re->ids) hits += ids.size();
  std::printf("avg per query: EPT* %.0f compdists (in memory) | SPB-tree "
              "%.0f compdists + %.0f page accesses | %.1f hits\n",
              double(re->stats.dist_computations) / queries.size(),
              double(rs->stats.dist_computations) / queries.size(),
              double(rs->stats.page_accesses()) / queries.size(),
              double(hits) / queries.size());

  // "Show the 10 most similar images".
  auto ke = ept->KnnQuery(ept->dataset().view(42), 10);
  if (!ke.ok()) return 1;
  std::printf("\n10-NN of image 42 via EPT* (%llu compdists):\n",
              (unsigned long long)ke->stats.dist_computations);
  for (const Neighbor& nb : ke->neighbors[0]) {
    std::printf("  image %-6u distance %.1f\n", nb.id, nb.dist);
  }
  std::printf("\nPaper guidance (Section 7): EPT* for small datasets with\n"
              "complex distances; SPB-tree when the dataset outgrows RAM.\n");
  return 0;
}
