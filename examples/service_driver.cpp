// Long-running multi-client driver for the sharded service layer
// (src/service/sharded_service.h): M concurrent client threads sustain
// mixed read/write traffic against one pmi::ShardedService and the
// driver reports QPS, shard balance, queue depth, and rejection rate.
//
// Each client owns a disjoint id stripe (id % clients == c) for its
// update toggles, so every client can verify its own liveness mirror
// against the service at the end -- a correctness gate, not just a load
// generator.  kResourceExhausted and kDeadlineExceeded are expected
// backpressure under load and are counted; any OTHER failure (or a
// final mirror mismatch) exits non-zero.  Built to run under
// ThreadSanitizer in the service-stress CI job.
//
// `--chaos` switches to the self-healing demonstration: the service is
// built DURABLE on a fault-injecting Env with the shard supervisor on,
// clients go through the retry layer (ApplyWithRetry / QueryWithRetry),
// and mid-run the driver pulls the power on one write (torn-write
// fault).  The run then reports the time from fault detection to
// all-shards-writable plus the supervisor's counters, and exits
// non-zero if any client saw an untyped error, a mirror check failed,
// or the service never healed.
//
// Knobs (harness env-var convention):
//   PMI_STRESS_THREADS   client threads (default 8)
//   PMI_DRIVER_N         dataset cardinality (default 20000)
//   PMI_DRIVER_SHARDS    shard count (default 4)
//   PMI_DRIVER_WORKERS   admission workers (default 4)
//   PMI_DRIVER_QUEUE     admission queue capacity (default 64)
//   PMI_DRIVER_ROUNDS    rounds per client (default 200)
//   PMI_FAULT_SEED       --chaos only: fault plan seed (default 20260809)

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "src/core/rng.h"
#include "src/data/distribution.h"
#include "src/data/generators.h"
#include "src/harness/workload.h"
#include "src/service/retry.h"
#include "src/service/sharded_service.h"
#include "src/storage/fault_env.h"

namespace pmi {
namespace {

void RemoveTree(const std::string& dir) {
  Env* env = Env::Default();
  StatusOr<std::vector<std::string>> names = env->ListDir(dir);
  if (names.ok()) {
    for (const std::string& name : *names) {
      const std::string path = JoinPath(dir, name);
      if (env->RemoveFile(path).ok()) continue;
      RemoveTree(path);
    }
  }
  ::rmdir(dir.c_str());
}

bool AllWritable(const ShardedService& svc) {
  for (const Status& s : svc.write_statuses()) {
    if (!s.ok()) return false;
  }
  return true;
}

int RunChaos(uint32_t clients, uint32_t n, uint32_t shards, uint32_t workers,
             uint32_t queue, uint32_t rounds) {
  const uint64_t seed = EnvU32("PMI_FAULT_SEED", 20260809);
  BenchDataset bd = MakeBenchDataset(BenchDatasetId::kSynthetic, n, 7);
  const Dataset data = bd.data;

  const std::string dir =
      "/tmp/pmi_driver_chaos_" + std::to_string(::getpid());
  RemoveTree(dir);
  FaultInjectingEnv fenv(Env::Default());
  DurabilityOptions dopts;
  dopts.env = &fenv;

  ServiceOptions sopts;
  sopts.num_shards = shards;
  sopts.workers = workers;
  sopts.max_queue = queue;
  sopts.self_heal = true;
  sopts.supervisor.poll_interval_ms = 1;
  sopts.supervisor.initial_backoff_ms = 1;
  sopts.supervisor.max_backoff_ms = 16;
  sopts.supervisor.max_recovery_attempts = 8;
  sopts.supervisor.seed = seed;

  auto svc_or = ShardedService::CreateDurable(
      MetricDBConfig().WithMetric("Linf").WithIndex("LAESA").WithPivots(4),
      bd.data, dir, sopts, dopts);
  if (!svc_or.ok()) {
    std::fprintf(stderr, "durable service create failed: %s\n",
                 svc_or.status().ToString().c_str());
    return 1;
  }
  ShardedService& svc = **svc_or;
  std::printf("chaos service: n=%u shards=%u workers=%u queue=%u  "
              "clients=%u rounds=%u  dir=%s\n",
              n, shards, workers, queue, clients, rounds, dir.c_str());

  RetryPolicy policy;
  policy.max_attempts = 8;
  policy.budget_ms = 4000;
  policy.seed = seed ^ 0xc11e47;

  std::atomic<uint64_t> queries_done{0};
  std::atomic<uint64_t> applies_done{0};
  std::atomic<uint64_t> typed_failures{0};
  std::atomic<uint64_t> untyped_failures{0};
  std::atomic<uint64_t> retry_attempts{0};
  std::atomic<uint64_t> idempotent_skips{0};
  std::atomic<uint64_t> mirror_mismatches{0};
  std::atomic<uint32_t> clients_live{clients};

  auto is_typed = [](const Status& s) {
    switch (s.code()) {
      case StatusCode::kUnavailable:
      case StatusCode::kDeadlineExceeded:
      case StatusCode::kResourceExhausted:
        return true;
      default:
        return false;
    }
  };

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (uint32_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      Rng rng(seed + c);
      std::vector<ObjectId> stripe;
      for (ObjectId id = c; id < n; id += clients) stripe.push_back(id);
      std::vector<uint8_t> live(stripe.size(), 1);
      // Slots whose batch failed terminally: a torn write may have
      // committed a durable prefix that recovery later replays, so the
      // mirror can no longer vouch for them.
      std::vector<uint8_t> unknown(stripe.size(), 0);

      for (uint32_t round = 0; round < rounds; ++round) {
        if (rng() % 10 < 7) {
          std::vector<ObjectView> qs;
          for (int i = 0; i < 4; ++i) qs.push_back(data.view(rng() % n));
          RetryStats rs;
          StatusOr<QueryResult> r = QueryWithRetry(
              svc, QueryRequest::KnnBatch(qs, size_t{8}), policy, {}, &rs);
          retry_attempts.fetch_add(rs.attempts, std::memory_order_relaxed);
          if (r.ok()) {
            queries_done.fetch_add(qs.size(), std::memory_order_relaxed);
          } else if (is_typed(r.status())) {
            typed_failures.fetch_add(1, std::memory_order_relaxed);
          } else {
            untyped_failures.fetch_add(1, std::memory_order_relaxed);
            std::fprintf(stderr, "client %u untyped read: %s\n", c,
                         r.status().ToString().c_str());
          }
        } else {
          // One op per distinct slot so liveness can attribute a
          // partial orphan (the retry layer's exactly-once contract).
          std::vector<UpdateOp> ops;
          std::vector<size_t> touched;
          for (int i = 0; i < 8; ++i) {
            size_t slot = (rng() + i * 7919) % stripe.size();
            bool dup = false;
            for (size_t t : touched) dup = dup || t == slot;
            if (dup) continue;
            touched.push_back(slot);
            ops.push_back(live[slot] != 0 ? UpdateOp::Remove(stripe[slot])
                                          : UpdateOp::Insert(stripe[slot]));
            live[slot] ^= 1;
          }
          RetryStats rs;
          StatusOr<ApplyResult> a = ApplyWithRetry(svc, ops, policy, {}, &rs);
          retry_attempts.fetch_add(rs.attempts, std::memory_order_relaxed);
          idempotent_skips.fetch_add(rs.idempotent_skips,
                                     std::memory_order_relaxed);
          const Status st = a.ok() ? a->Collapse() : a.status();
          if (st.ok()) {
            applies_done.fetch_add(1, std::memory_order_relaxed);
          } else {
            // Commit is atomic per shard, not across shards: only ops
            // whose owning shard refused roll back (and those can no
            // longer be vouched for -- a torn prefix may land later
            // via recovery replay).
            for (size_t k = touched.size(); k-- > 0;) {
              const Status& ss =
                  a.ok() ? a->shard_status[svc.router().shard_of(ops[k].id)]
                         : a.status();
              if (ss.ok()) continue;
              live[touched[k]] ^= 1;
              unknown[touched[k]] = 1;
            }
            if (is_typed(st)) {
              typed_failures.fetch_add(1, std::memory_order_relaxed);
            } else {
              untyped_failures.fetch_add(1, std::memory_order_relaxed);
              std::fprintf(stderr, "client %u untyped apply: %s\n", c,
                           st.ToString().c_str());
            }
          }
        }
      }
      --clients_live;

      // Mirror gate over every id whose state the client still vouches
      // for.  Wait for convergence first -- a quarantined shard answers
      // from its stale pinned view.
      while (!AllWritable(svc) &&
             std::chrono::steady_clock::now() - t0 <
                 std::chrono::seconds(30)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
      for (size_t slot = 0; slot < stripe.size(); ++slot) {
        if (unknown[slot] != 0) continue;
        if (svc.alive(stripe[slot]) != (live[slot] != 0)) {
          mirror_mismatches.fetch_add(1, std::memory_order_relaxed);
          std::fprintf(stderr, "client %u mirror mismatch at id %u\n", c,
                       stripe[slot]);
        }
      }
    });
  }

  // Pull the power mid-run: arm a torn write a few mutations out, wait
  // for it to fire, hold the powered-off window briefly, restore.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  fenv.Arm({FaultKind::kTornWrite, 3, seed});
  const auto fault_armed = std::chrono::steady_clock::now();
  while (!fenv.triggered() && clients_live.load() > 0 &&
         std::chrono::steady_clock::now() - fault_armed <
             std::chrono::seconds(10)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const bool fired = fenv.triggered();
  const auto t_fault = std::chrono::steady_clock::now();
  if (fired) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  fenv.Arm({FaultKind::kNone, 0, 1});

  double recovery_ms = -1;
  if (fired) {
    while (!AllWritable(svc) &&
           std::chrono::steady_clock::now() - t_fault <
               std::chrono::seconds(30)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    if (AllWritable(svc)) {
      recovery_ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t_fault)
                        .count();
    }
  }

  for (std::thread& t : threads) t.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const ShardSupervisor::Stats sup = svc.supervisor()->stats();
  std::printf("\nelapsed %.2fs  reads %llu  apply batches %llu  "
              "typed failures %llu  retry attempts %llu  "
              "idempotent skips %llu\n",
              elapsed, (unsigned long long)queries_done.load(),
              (unsigned long long)applies_done.load(),
              (unsigned long long)typed_failures.load(),
              (unsigned long long)retry_attempts.load(),
              (unsigned long long)idempotent_skips.load());
  std::printf("fault %s  time-to-recovery %.1f ms  supervisor: "
              "faults %llu  recoveries %llu  failed attempts %llu  "
              "breaker trips %llu\n",
              fired ? "fired" : "did not fire (run too short)", recovery_ms,
              (unsigned long long)sup.faults_detected,
              (unsigned long long)sup.recoveries,
              (unsigned long long)sup.failed_attempts,
              (unsigned long long)sup.breaker_trips);

  const bool healed = !fired || recovery_ms >= 0;
  bool ok = untyped_failures.load() == 0 && mirror_mismatches.load() == 0 &&
            healed;
  if (!ok) {
    std::fprintf(stderr,
                 "FAILED: %llu untyped, %llu mirror mismatches, healed=%d\n",
                 (unsigned long long)untyped_failures.load(),
                 (unsigned long long)mirror_mismatches.load(), int(healed));
  } else {
    std::printf("self-heal verified; all failures typed; mirrors clean\n");
  }
  Status closed = svc.Close();
  if (!closed.ok()) {
    std::fprintf(stderr, "close failed: %s\n", closed.ToString().c_str());
    ok = false;
  }
  RemoveTree(dir);
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace pmi

int main(int argc, char** argv) {
  using namespace pmi;

  bool chaos = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--chaos") == 0) chaos = true;
  }

  const uint32_t clients = std::max(EnvU32("PMI_STRESS_THREADS", 8), 1u);
  const uint32_t n = std::max(EnvU32("PMI_DRIVER_N", 20000), 64u);
  const uint32_t shards = std::max(EnvU32("PMI_DRIVER_SHARDS", 4), 1u);
  const uint32_t workers = std::max(EnvU32("PMI_DRIVER_WORKERS", 4), 1u);
  const uint32_t queue = std::max(EnvU32("PMI_DRIVER_QUEUE", 64), 1u);
  const uint32_t rounds = std::max(EnvU32("PMI_DRIVER_ROUNDS", 200), 1u);

  if (chaos) return RunChaos(clients, n, shards, workers, queue, rounds);

  BenchDataset bd = MakeBenchDataset(BenchDatasetId::kSynthetic, n, 7);
  DistanceDistribution dist = EstimateDistribution(bd.data, *bd.metric);
  const double radius = dist.RadiusForSelectivity(0.01);

  ServiceOptions sopts;
  sopts.num_shards = shards;
  sopts.workers = workers;
  sopts.max_queue = queue;
  auto svc_or = ShardedService::Create(
      MetricDBConfig().WithMetric("Linf").WithIndex("LAESA").WithPivots(4),
      bd.data, sopts);
  if (!svc_or.ok()) {
    std::fprintf(stderr, "service create failed: %s\n",
                 svc_or.status().ToString().c_str());
    return 1;
  }
  ShardedService& svc = **svc_or;
  std::printf("service: n=%u shards=%u workers=%u queue=%u  "
              "clients=%u rounds=%u\n",
              n, shards, workers, queue, clients, rounds);

  std::atomic<uint64_t> queries_done{0};
  std::atomic<uint64_t> applies_done{0};
  std::atomic<uint64_t> rejected{0};
  std::atomic<uint64_t> deadline_expired{0};
  std::atomic<uint64_t> untyped_failures{0};
  std::atomic<uint64_t> mirror_mismatches{0};

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (uint32_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      Rng rng(0x5eed + c);
      // This client's disjoint toggle stripe and its liveness mirror.
      std::vector<ObjectId> stripe;
      for (ObjectId id = c; id < n; id += clients) stripe.push_back(id);
      std::vector<uint8_t> live(stripe.size(), 1);

      auto count_failure = [&](const Status& s) {
        if (s.code() == StatusCode::kResourceExhausted) {
          rejected.fetch_add(1, std::memory_order_relaxed);
        } else if (s.code() == StatusCode::kDeadlineExceeded) {
          deadline_expired.fetch_add(1, std::memory_order_relaxed);
        } else {
          untyped_failures.fetch_add(1, std::memory_order_relaxed);
          std::fprintf(stderr, "client %u: %s\n", c, s.ToString().c_str());
        }
      };

      for (uint32_t round = 0; round < rounds; ++round) {
        if (rng() % 10 < 7) {
          // Read: a 4-query batch, alternating MRQ / MkNN.
          std::vector<ObjectView> qs;
          for (int i = 0; i < 4; ++i) qs.push_back(bd.data.view(rng() % n));
          StatusOr<QueryResult> r =
              (round % 2 == 0)
                  ? svc.Query(QueryRequest::RangeBatch(qs, radius))
                  : svc.Query(QueryRequest::KnnBatch(qs, size_t{8}));
          if (r.ok()) {
            queries_done.fetch_add(qs.size(), std::memory_order_relaxed);
          } else {
            count_failure(r.status());
          }
        } else {
          // Write: a batch of 8 toggles from this client's own stripe.
          std::vector<UpdateOp> ops;
          std::vector<size_t> touched;
          for (int i = 0; i < 8; ++i) {
            size_t slot = rng() % stripe.size();
            touched.push_back(slot);
            ops.push_back(live[slot] != 0 ? UpdateOp::Remove(stripe[slot])
                                          : UpdateOp::Insert(stripe[slot]));
            live[slot] ^= 1;
          }
          StatusOr<ApplyResult> a = svc.Apply(ops);
          if (a.ok() && a->all_ok()) {
            applies_done.fetch_add(1, std::memory_order_relaxed);
          } else {
            // Whole batch refused: roll the mirror back (reverse order
            // so double-toggled slots rewind correctly).
            for (auto it = touched.rbegin(); it != touched.rend(); ++it) {
              live[*it] ^= 1;
            }
            count_failure(a.ok() ? a->Collapse() : a.status());
          }
        }
      }

      // Correctness gate: the service agrees with this client's mirror
      // on every id the client owns (nobody else touches the stripe).
      for (size_t slot = 0; slot < stripe.size(); ++slot) {
        if (svc.alive(stripe[slot]) != (live[slot] != 0)) {
          mirror_mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const ShardedService::ServiceStats stats = svc.stats();
  const uint64_t issued = stats.admission.accepted + stats.admission.rejected;
  std::printf("\nelapsed %.2fs  read QPS %.0f  apply batches/s %.0f\n",
              elapsed, queries_done.load() / elapsed,
              applies_done.load() / elapsed);
  std::printf("admission: accepted %llu  rejected %llu (%.1f%% of %llu)  "
              "deadline-expired %llu  peak queue depth %u\n",
              (unsigned long long)stats.admission.accepted,
              (unsigned long long)stats.admission.rejected,
              issued > 0 ? 100.0 * stats.admission.rejected / issued : 0.0,
              (unsigned long long)issued,
              (unsigned long long)(stats.deadline_expired +
                                   deadline_expired.load()),
              stats.admission.peak_depth);

  std::vector<uint32_t> sizes = svc.shard_sizes();
  std::vector<uint64_t> seqs = svc.sequences();
  uint32_t min_size = sizes[0];
  uint32_t max_size = sizes[0];
  std::printf("shard balance:");
  for (uint32_t s = 0; s < sizes.size(); ++s) {
    std::printf(" [%u] %u objs seq %llu", s, sizes[s],
                (unsigned long long)seqs[s]);
    min_size = std::min(min_size, sizes[s]);
    max_size = std::max(max_size, sizes[s]);
  }
  std::printf("  (max/min %.2f)\n", double(max_size) / double(min_size));

  bool ok = untyped_failures.load() == 0 && mirror_mismatches.load() == 0;
  if (!ok) {
    std::fprintf(stderr,
                 "FAILED: %llu untyped failures, %llu mirror mismatches\n",
                 (unsigned long long)untyped_failures.load(),
                 (unsigned long long)mirror_mismatches.load());
  } else {
    std::printf("all client mirrors verified; all failures typed\n");
  }
  Status closed = svc.Close();
  if (!closed.ok()) {
    std::fprintf(stderr, "close failed: %s\n", closed.ToString().c_str());
    return 1;
  }
  return ok ? 0 : 1;
}
