// Long-running multi-client driver for the sharded service layer
// (src/service/sharded_service.h): M concurrent client threads sustain
// mixed read/write traffic against one pmi::ShardedService and the
// driver reports QPS, shard balance, queue depth, and rejection rate.
//
// Each client owns a disjoint id stripe (id % clients == c) for its
// update toggles, so every client can verify its own liveness mirror
// against the service at the end -- a correctness gate, not just a load
// generator.  kResourceExhausted and kDeadlineExceeded are expected
// backpressure under load and are counted; any OTHER failure (or a
// final mirror mismatch) exits non-zero.  Built to run under
// ThreadSanitizer in the service-stress CI job.
//
// Knobs (harness env-var convention):
//   PMI_STRESS_THREADS   client threads (default 8)
//   PMI_DRIVER_N         dataset cardinality (default 20000)
//   PMI_DRIVER_SHARDS    shard count (default 4)
//   PMI_DRIVER_WORKERS   admission workers (default 4)
//   PMI_DRIVER_QUEUE     admission queue capacity (default 64)
//   PMI_DRIVER_ROUNDS    rounds per client (default 200)

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "src/core/rng.h"
#include "src/data/distribution.h"
#include "src/data/generators.h"
#include "src/harness/workload.h"
#include "src/service/sharded_service.h"

int main() {
  using namespace pmi;

  const uint32_t clients = std::max(EnvU32("PMI_STRESS_THREADS", 8), 1u);
  const uint32_t n = std::max(EnvU32("PMI_DRIVER_N", 20000), 64u);
  const uint32_t shards = std::max(EnvU32("PMI_DRIVER_SHARDS", 4), 1u);
  const uint32_t workers = std::max(EnvU32("PMI_DRIVER_WORKERS", 4), 1u);
  const uint32_t queue = std::max(EnvU32("PMI_DRIVER_QUEUE", 64), 1u);
  const uint32_t rounds = std::max(EnvU32("PMI_DRIVER_ROUNDS", 200), 1u);

  BenchDataset bd = MakeBenchDataset(BenchDatasetId::kSynthetic, n, 7);
  DistanceDistribution dist = EstimateDistribution(bd.data, *bd.metric);
  const double radius = dist.RadiusForSelectivity(0.01);

  ServiceOptions sopts;
  sopts.num_shards = shards;
  sopts.workers = workers;
  sopts.max_queue = queue;
  auto svc_or = ShardedService::Create(
      MetricDBConfig().WithMetric("Linf").WithIndex("LAESA").WithPivots(4),
      bd.data, sopts);
  if (!svc_or.ok()) {
    std::fprintf(stderr, "service create failed: %s\n",
                 svc_or.status().ToString().c_str());
    return 1;
  }
  ShardedService& svc = **svc_or;
  std::printf("service: n=%u shards=%u workers=%u queue=%u  "
              "clients=%u rounds=%u\n",
              n, shards, workers, queue, clients, rounds);

  std::atomic<uint64_t> queries_done{0};
  std::atomic<uint64_t> applies_done{0};
  std::atomic<uint64_t> rejected{0};
  std::atomic<uint64_t> deadline_expired{0};
  std::atomic<uint64_t> untyped_failures{0};
  std::atomic<uint64_t> mirror_mismatches{0};

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (uint32_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      Rng rng(0x5eed + c);
      // This client's disjoint toggle stripe and its liveness mirror.
      std::vector<ObjectId> stripe;
      for (ObjectId id = c; id < n; id += clients) stripe.push_back(id);
      std::vector<uint8_t> live(stripe.size(), 1);

      auto count_failure = [&](const Status& s) {
        if (s.code() == StatusCode::kResourceExhausted) {
          rejected.fetch_add(1, std::memory_order_relaxed);
        } else if (s.code() == StatusCode::kDeadlineExceeded) {
          deadline_expired.fetch_add(1, std::memory_order_relaxed);
        } else {
          untyped_failures.fetch_add(1, std::memory_order_relaxed);
          std::fprintf(stderr, "client %u: %s\n", c, s.ToString().c_str());
        }
      };

      for (uint32_t round = 0; round < rounds; ++round) {
        if (rng() % 10 < 7) {
          // Read: a 4-query batch, alternating MRQ / MkNN.
          std::vector<ObjectView> qs;
          for (int i = 0; i < 4; ++i) qs.push_back(bd.data.view(rng() % n));
          StatusOr<QueryResult> r =
              (round % 2 == 0)
                  ? svc.Query(QueryRequest::RangeBatch(qs, radius))
                  : svc.Query(QueryRequest::KnnBatch(qs, size_t{8}));
          if (r.ok()) {
            queries_done.fetch_add(qs.size(), std::memory_order_relaxed);
          } else {
            count_failure(r.status());
          }
        } else {
          // Write: a batch of 8 toggles from this client's own stripe.
          std::vector<UpdateOp> ops;
          std::vector<size_t> touched;
          for (int i = 0; i < 8; ++i) {
            size_t slot = rng() % stripe.size();
            touched.push_back(slot);
            ops.push_back(live[slot] != 0 ? UpdateOp::Remove(stripe[slot])
                                          : UpdateOp::Insert(stripe[slot]));
            live[slot] ^= 1;
          }
          StatusOr<ApplyResult> a = svc.Apply(ops);
          if (a.ok() && a->all_ok()) {
            applies_done.fetch_add(1, std::memory_order_relaxed);
          } else {
            // Whole batch refused: roll the mirror back (reverse order
            // so double-toggled slots rewind correctly).
            for (auto it = touched.rbegin(); it != touched.rend(); ++it) {
              live[*it] ^= 1;
            }
            count_failure(a.ok() ? a->Collapse() : a.status());
          }
        }
      }

      // Correctness gate: the service agrees with this client's mirror
      // on every id the client owns (nobody else touches the stripe).
      for (size_t slot = 0; slot < stripe.size(); ++slot) {
        if (svc.alive(stripe[slot]) != (live[slot] != 0)) {
          mirror_mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const ShardedService::ServiceStats stats = svc.stats();
  const uint64_t issued = stats.admission.accepted + stats.admission.rejected;
  std::printf("\nelapsed %.2fs  read QPS %.0f  apply batches/s %.0f\n",
              elapsed, queries_done.load() / elapsed,
              applies_done.load() / elapsed);
  std::printf("admission: accepted %llu  rejected %llu (%.1f%% of %llu)  "
              "deadline-expired %llu  peak queue depth %u\n",
              (unsigned long long)stats.admission.accepted,
              (unsigned long long)stats.admission.rejected,
              issued > 0 ? 100.0 * stats.admission.rejected / issued : 0.0,
              (unsigned long long)issued,
              (unsigned long long)(stats.deadline_expired +
                                   deadline_expired.load()),
              stats.admission.peak_depth);

  std::vector<uint32_t> sizes = svc.shard_sizes();
  std::vector<uint64_t> seqs = svc.sequences();
  uint32_t min_size = sizes[0];
  uint32_t max_size = sizes[0];
  std::printf("shard balance:");
  for (uint32_t s = 0; s < sizes.size(); ++s) {
    std::printf(" [%u] %u objs seq %llu", s, sizes[s],
                (unsigned long long)seqs[s]);
    min_size = std::min(min_size, sizes[s]);
    max_size = std::max(max_size, sizes[s]);
  }
  std::printf("  (max/min %.2f)\n", double(max_size) / double(min_size));

  bool ok = untyped_failures.load() == 0 && mirror_mismatches.load() == 0;
  if (!ok) {
    std::fprintf(stderr,
                 "FAILED: %llu untyped failures, %llu mirror mismatches\n",
                 (unsigned long long)untyped_failures.load(),
                 (unsigned long long)mirror_mismatches.load());
  } else {
    std::printf("all client mirrors verified; all failures typed\n");
  }
  Status closed = svc.Close();
  if (!closed.ok()) {
    std::fprintf(stderr, "close failed: %s\n", closed.ToString().c_str());
    return 1;
  }
  return ok ? 0 : 1;
}
