// Fuzzy dictionary search -- the paper's introduction scenario, with the
// edit distance over a word corpus.  Compares the three pivot-based
// trees (BKT, FQT, MVPT) on the same typo-correction workload: given a
// misspelled word, find all dictionary words within edit distance 2 and
// the 5 most similar words.

#include <cstdio>
#include <string>

#include "src/core/pivot_selection.h"
#include "src/data/generators.h"
#include "src/harness/registry.h"

int main() {
  using namespace pmi;

  // A dictionary of generated English-like words plus a few planted
  // entries so the demo queries have well-known answers.
  Dataset dict = MakeWordsLike(30000, /*seed=*/5);
  const char* planted[] = {"defoliate",  "defoliates", "defoliated",
                           "defoliating", "defoliation", "citrate",
                           "search",     "searched",   "searches"};
  for (const char* w : planted) dict.AddString(w);
  EditDistanceMetric metric(34);
  std::printf("dictionary: %u words\n", dict.size());

  PivotSet pivots = SelectSharedPivots(dict, metric, 5);
  struct Built {
    std::string name;
    std::unique_ptr<MetricIndex> index;
  };
  std::vector<Built> indexes;
  for (const char* name : {"BKT", "FQT", "MVPT"}) {
    Built b{name, MakeIndex(name)};
    OpStats s = b.index->Build(dict, metric, pivots);
    std::printf("built %-4s in %.2fs (%llu distance computations)\n", name,
                s.seconds, (unsigned long long)s.dist_computations);
    indexes.push_back(std::move(b));
  }

  for (const char* typo : {"defoliatd", "serach", "citratee"}) {
    std::printf("\nquery: \"%s\"\n", typo);
    ObjectView q = ObjectView::FromString(typo);
    for (const auto& b : indexes) {
      std::vector<ObjectId> hits;
      OpStats s = b.index->RangeQuery(q, 2.0, &hits);
      std::printf("  %-4s MRQ(r=2): %zu hits, %llu compdists --",
                  b.name.c_str(), hits.size(),
                  (unsigned long long)s.dist_computations);
      size_t shown = 0;
      for (ObjectId id : hits) {
        if (shown++ == 4) break;
        std::string w(dict.view(id).AsString());
        std::printf(" %s", w.c_str());
      }
      std::printf("%s\n", hits.size() > 4 ? " ..." : "");
    }
    // 5-NN through the best-performing tree.
    std::vector<Neighbor> knn;
    indexes.back().index->KnnQuery(q, 5, &knn);
    std::printf("  MVPT 5-NN:");
    for (const Neighbor& nb : knn) {
      std::string w(dict.view(nb.id).AsString());
      std::printf(" %s(%.0f)", w.c_str(), nb.dist);
    }
    std::printf("\n");
  }
  return 0;
}
