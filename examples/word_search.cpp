// Fuzzy dictionary search -- the paper's introduction scenario, with the
// edit distance over a word corpus, through the pmi::MetricDB facade.
// Compares the three pivot-based trees (BKT, FQT, MVPT) on the same
// typo-correction workload: given a misspelled word, find all dictionary
// words within edit distance 2 and the 5 most similar words.

#include <cstdio>
#include <string>
#include <vector>

#include "src/api/metric_db.h"
#include "src/data/generators.h"

int main() {
  using namespace pmi;

  // A dictionary of generated English-like words plus a few planted
  // entries so the demo queries have well-known answers.
  Dataset dict = MakeWordsLike(30000, /*seed=*/5);
  const char* planted[] = {"defoliate",  "defoliates", "defoliated",
                           "defoliating", "defoliation", "citrate",
                           "search",     "searched",   "searches"};
  for (const char* w : planted) dict.AddString(w);
  std::printf("dictionary: %u words\n", dict.size());

  // Three databases, one per tree index; each owns a dictionary copy and
  // its own edit-distance metric (max length derived from the data).
  std::vector<std::pair<std::string, MetricDB>> dbs;
  for (const char* name : {"BKT", "FQT", "MVPT"}) {
    auto db = MetricDB::Create(
        MetricDBConfig().WithMetric("edit").WithIndex(name).WithPivots(5),
        dict);
    if (!db.ok()) {
      std::fprintf(stderr, "create %s failed: %s\n", name,
                   db.status().ToString().c_str());
      return 1;
    }
    std::printf("built %-4s in %.2fs (%llu distance computations)\n", name,
                db->build_stats().seconds,
                (unsigned long long)db->build_stats().dist_computations);
    dbs.emplace_back(name, std::move(db).value());
  }

  for (const char* typo : {"defoliatd", "serach", "citratee"}) {
    std::printf("\nquery: \"%s\"\n", typo);
    ObjectView q = ObjectView::FromString(typo);
    for (const auto& [name, db] : dbs) {
      auto res = db.RangeQuery(q, 2.0);
      if (!res.ok()) {
        std::fprintf(stderr, "query failed: %s\n",
                     res.status().ToString().c_str());
        return 1;
      }
      const std::vector<ObjectId>& hits = res->ids[0];
      std::printf("  %-4s MRQ(r=2): %zu hits, %llu compdists --",
                  name.c_str(), hits.size(),
                  (unsigned long long)res->stats.dist_computations);
      size_t shown = 0;
      for (ObjectId id : hits) {
        if (shown++ == 4) break;
        std::string w(db.dataset().view(id).AsString());
        std::printf(" %s", w.c_str());
      }
      std::printf("%s\n", hits.size() > 4 ? " ..." : "");
    }
    // 5-NN through the best-performing tree.
    const MetricDB& mvpt = dbs.back().second;
    auto knn = mvpt.KnnQuery(q, 5);
    if (!knn.ok()) return 1;
    std::printf("  MVPT 5-NN:");
    for (const Neighbor& nb : knn->neighbors[0]) {
      std::string w(mvpt.dataset().view(nb.id).AsString());
      std::printf(" %s(%.0f)", w.c_str(), nb.dist);
    }
    std::printf("\n");
  }
  return 0;
}
