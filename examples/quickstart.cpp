// Quickstart: build a metric index and run similarity queries.
//
// Demonstrates the core public API in ~60 lines: create a dataset,
// choose a metric, select shared pivots (HFI), build two indexes (an
// in-memory MVPT and a disk-based SPB-tree), and compare their costs on
// the same range and kNN queries.

#include <cstdio>

#include "src/core/linear_scan.h"
#include "src/core/pivot_selection.h"
#include "src/data/generators.h"
#include "src/harness/registry.h"

int main() {
  using namespace pmi;

  // 1. A dataset and its metric.  Generators for the paper's four
  //    workloads ship with the library; your own data goes through
  //    Dataset::Vectors / Dataset::Strings the same way.
  BenchDataset bd = MakeBenchDataset(BenchDatasetId::kLa, 20000);
  std::printf("dataset: %s, %u objects, metric %s\n", bd.name.c_str(),
              bd.data.size(), bd.metric->name().c_str());

  // 2. Shared pivots -- the paper's equal footing: every index uses the
  //    same HFI-selected pivot set.
  PivotSet pivots = SelectSharedPivots(bd.data, *bd.metric, /*count=*/5);

  // 3. Build two very different indexes through one interface.
  auto mvpt = MakeIndex("MVPT");
  auto spb = MakeIndex("SPB-tree");
  OpStats b1 = mvpt->Build(bd.data, *bd.metric, pivots);
  OpStats b2 = spb->Build(bd.data, *bd.metric, pivots);
  std::printf("built MVPT      in %.3fs (%llu distance computations)\n",
              b1.seconds, (unsigned long long)b1.dist_computations);
  std::printf("built SPB-tree  in %.3fs (%llu distance computations, %llu "
              "page writes)\n",
              b2.seconds, (unsigned long long)b2.dist_computations,
              (unsigned long long)b2.page_writes);

  // 4. A range query: everything within distance 200 of object 0.
  ObjectView q = bd.data.view(0);
  std::vector<ObjectId> in_range;
  OpStats r1 = mvpt->RangeQuery(q, 200.0, &in_range);
  std::printf("\nMRQ(q, 200): %zu results; MVPT used %llu compdists\n",
              in_range.size(), (unsigned long long)r1.dist_computations);
  OpStats r2 = spb->RangeQuery(q, 200.0, &in_range);
  std::printf("MRQ(q, 200): %zu results; SPB-tree used %llu compdists, "
              "%llu page accesses\n",
              in_range.size(), (unsigned long long)r2.dist_computations,
              (unsigned long long)r2.page_accesses());

  // 5. A 10-nearest-neighbor query, checked against brute force.
  std::vector<Neighbor> knn, truth;
  mvpt->KnnQuery(q, 10, &knn);
  LinearScan oracle;
  oracle.Build(bd.data, *bd.metric, pivots);
  oracle.KnnQuery(q, 10, &truth);
  std::printf("\n10-NN of q (MVPT vs brute force):\n");
  for (size_t i = 0; i < knn.size(); ++i) {
    std::printf("  #%zu: id=%u dist=%.2f  (oracle: id=%u dist=%.2f)\n", i + 1,
                knn[i].id, knn[i].dist, truth[i].id, truth[i].dist);
  }
  return 0;
}
