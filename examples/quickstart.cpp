// Quickstart: build a metric database, run similarity queries, persist
// it, and reopen it -- all through the stable pmi::MetricDB facade.
//
// MetricDB owns the dataset, metric, pivots, and index; every call
// returns pmi::Status / pmi::StatusOr instead of aborting, and
// Save/Open round-trip the whole database through one snapshot file.
// (The internal survey harness -- MetricIndex, the registry -- stays
// available for benchmarks; see README "API layers".)

#include <cstdio>
#include <cstdlib>

#include "src/api/metric_db.h"
#include "src/data/generators.h"

int main(int argc, char** argv) {
  using namespace pmi;

  // 1. A dataset.  Generators for the paper's four workloads ship with
  //    the library; your own data goes through Dataset::Vectors /
  //    Dataset::Strings the same way.  MetricDB consumes the dataset --
  //    no lifetimes to hand-manage.
  BenchDataset bd = MakeBenchDataset(BenchDatasetId::kLa, 20000);
  std::printf("dataset: %s, %u objects\n", bd.name.c_str(), bd.data.size());

  // 2. Two very different indexes behind the same facade.  The config
  //    names the metric and index; the L2 domain width is derived from
  //    the data.  Each database owns its copy of the dataset.
  auto mvpt = MetricDB::Create(
      MetricDBConfig().WithMetric("L2").WithIndex("MVPT").WithPivots(5),
      bd.data);
  auto spb = MetricDB::Create(
      MetricDBConfig().WithMetric("L2").WithIndex("SPB-tree").WithPivots(5),
      bd.data);
  if (!mvpt.ok() || !spb.ok()) {
    std::fprintf(stderr, "create failed: %s\n",
                 (!mvpt.ok() ? mvpt.status() : spb.status()).ToString().c_str());
    return 1;
  }
  std::printf("built MVPT      in %.3fs (%llu distance computations)\n",
              mvpt->build_stats().seconds,
              (unsigned long long)mvpt->build_stats().dist_computations);
  std::printf("built SPB-tree  in %.3fs (%llu distance computations, %llu "
              "page writes)\n",
              spb->build_stats().seconds,
              (unsigned long long)spb->build_stats().dist_computations,
              (unsigned long long)spb->build_stats().page_writes);

  // 3. Errors are values, not aborts: a bad index name is recoverable.
  auto bad = MetricDB::Create(MetricDBConfig().WithIndex("B-tree"), bd.data);
  std::printf("\nCreate(index=\"B-tree\") -> %s\n",
              bad.status().ToString().c_str());

  // 4. One query descriptor covers range and kNN, single and batch.
  ObjectView q = mvpt->dataset().view(0);
  auto r1 = mvpt->RangeQuery(q, 200.0);
  auto r2 = spb->RangeQuery(q, 200.0);
  if (!r1.ok() || !r2.ok()) return 1;
  std::printf("\nMRQ(q, 200): %zu results; MVPT used %llu compdists\n",
              r1->ids[0].size(),
              (unsigned long long)r1->stats.dist_computations);
  std::printf("MRQ(q, 200): %zu results; SPB-tree used %llu compdists, "
              "%llu page accesses\n",
              r2->ids[0].size(),
              (unsigned long long)r2->stats.dist_computations,
              (unsigned long long)r2->stats.page_accesses());

  // 5. A 10-nearest-neighbor query, checked against brute force -- the
  //    LinearScan baseline is just another index name.  WithPivotSet
  //    reuses the pivots already selected for the MVPT (LinearScan never
  //    reads them, so this skips a pointless selection pass).
  auto oracle = MetricDB::Create(MetricDBConfig()
                                     .WithMetric("L2")
                                     .WithIndex("LinearScan")
                                     .WithPivotSet(mvpt->pivots()),
                                 bd.data);
  if (!oracle.ok()) return 1;
  auto knn = mvpt->KnnQuery(q, 10);
  auto truth = oracle->KnnQuery(q, 10);
  if (!knn.ok() || !truth.ok()) return 1;
  std::printf("\n10-NN of q (MVPT vs brute force):\n");
  for (size_t i = 0; i < knn->neighbors[0].size(); ++i) {
    const Neighbor& a = knn->neighbors[0][i];
    const Neighbor& b = truth->neighbors[0][i];
    std::printf("  #%zu: id=%u dist=%.2f  (oracle: id=%u dist=%.2f)\n", i + 1,
                a.id, a.dist, b.id, b.dist);
  }

  // 6. Persistence: save the database, reopen it in a fresh handle, and
  //    note that the MVPT restores without recomputing any distances.
  const char* path = argc > 1 ? argv[1] : "quickstart.pmidb";
  if (Status s = mvpt->Save(path); !s.ok()) {
    std::fprintf(stderr, "save failed: %s\n", s.ToString().c_str());
    return 1;
  }
  auto reopened = MetricDB::Open(path);
  if (!reopened.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 reopened.status().ToString().c_str());
    return 1;
  }
  auto knn2 = reopened->KnnQuery(reopened->dataset().view(0), 10);
  if (!knn2.ok()) return 1;
  bool identical = knn2->neighbors[0].size() == knn->neighbors[0].size();
  for (size_t i = 0; identical && i < knn2->neighbors[0].size(); ++i) {
    identical = knn2->neighbors[0][i].id == knn->neighbors[0][i].id &&
                knn2->neighbors[0][i].dist == knn->neighbors[0][i].dist;
  }
  std::printf("\nsaved to %s, reopened: restored=%s, open compdists=%llu, "
              "10-NN identical=%s\n",
              path, reopened->restored_from_snapshot() ? "yes" : "no",
              (unsigned long long)reopened->build_stats().dist_computations,
              identical ? "yes" : "no");
  if (!identical) return 1;

  // 7. Durability: give the database a home directory and every
  //    acknowledged update survives a crash.  CreateDurable writes a
  //    checkpoint plus a write-ahead log; an OK Remove/Insert means the
  //    op is fsynced into the log BEFORE it touches the index.
  const std::string dir = std::string(path) + ".d";
  uint64_t acked = 0;
  {
    auto live = MetricDB::CreateDurable(MetricDBConfig()
                                            .WithMetric("L2")
                                            .WithIndex("LAESA")
                                            .WithPivotSet(mvpt->pivots()),
                                        bd.data, dir);
    if (!live.ok()) {
      std::fprintf(stderr, "create durable failed: %s\n",
                   live.status().ToString().c_str());
      return 1;
    }
    for (ObjectId id : {3u, 7u, 11u, 20u}) {
      if (!live->Remove(id).ok()) return 1;
    }
    if (!live->Insert(7).ok()) return 1;  // re-insert = paper's update op
    acked = live->last_sequence();
    std::printf("\ndurable db at %s: %llu updates acknowledged\n",
                dir.c_str(), (unsigned long long)acked);
    // The handle now dies WITHOUT Save or Checkpoint -- the process
    // "crashes" here.  The WAL is the only carrier of those updates.
  }

  // 8. Crash recovery: OpenDurable loads the newest valid checkpoint
  //    and replays the log tail, landing on exactly the acknowledged
  //    history.  The recovered answers match a fresh from-scratch build
  //    of the same post-update state, bit for bit.
  auto recovered = MetricDB::OpenDurable(dir);
  if (!recovered.ok()) {
    std::fprintf(stderr, "recovery failed: %s\n",
                 recovered.status().ToString().c_str());
    return 1;
  }
  bool state_ok = recovered->last_sequence() == acked &&
                  !recovered->alive(3) && recovered->alive(7) &&
                  !recovered->alive(20);
  // Brute-force check over the surviving objects: replay the same
  // updates on the LinearScan oracle and compare distances.
  for (ObjectId id : {3u, 11u, 20u}) {
    if (!oracle->Remove(id).ok()) return 1;
  }
  auto knn3 = recovered->KnnQuery(recovered->dataset().view(0), 10);
  auto truth3 = oracle->KnnQuery(oracle->dataset().view(0), 10);
  if (!knn3.ok() || !truth3.ok()) return 1;
  bool replay_identical =
      knn3->neighbors[0].size() == truth3->neighbors[0].size();
  for (size_t i = 0; replay_identical && i < knn3->neighbors[0].size(); ++i) {
    replay_identical =
        knn3->neighbors[0][i].dist == truth3->neighbors[0][i].dist;
  }
  std::printf("recovered: seq=%llu (acked %llu), liveness %s, 10-NN vs "
              "oracle after the same updates identical=%s\n",
              (unsigned long long)recovered->last_sequence(),
              (unsigned long long)acked, state_ok ? "correct" : "WRONG",
              replay_identical ? "yes" : "no");
  return state_ok && replay_identical ? 0 : 1;
}
